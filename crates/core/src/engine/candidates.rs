//! [`CandidateSet`]: per-paper top-k reviewer candidate lists with
//! CELF-safe bounds on everything excluded.
//!
//! Every dense kernel in this crate — the `P × R` pair matrix, the per-stage
//! SDGA cost matrix, greedy's initial heap fill — scans all `R` reviewers
//! for every paper. On topic-model-shaped instances most of those pairs
//! score **exactly zero**: a reviewer with no expertise on any of a paper's
//! non-zero topics contributes nothing under any sparse-safe scoring, and by
//! submodularity (`gain(g, r, p) ≤ gain(∅, r, p) = c(r, p)`, Lemma 4) it
//! never will, no matter how the group grows. A candidate set materialises
//! that observation once per context: for each paper, the reviewers with
//! positive pair score (optionally truncated to the top `k` by score), plus
//! a per-paper **bound** — the largest pair score among excluded reviewers,
//! which upper-bounds every excluded marginal gain forever.
//!
//! # Certification rule
//!
//! A candidate set is **certified** when every paper's bound is exactly
//! `0.0`, i.e. nothing with positive score was cut. Certified pruning is
//! *exact-preserving* for gain-ranking consumers: an excluded reviewer's
//! gain is identically `+0.0` under every group state, so a solver that
//! falls back to the full pool the moment zero-gain pairs become relevant
//! (see the spill step in [`crate::cra::greedy`]) makes bit-identical
//! decisions to the dense path. [`PruningPolicy::Auto`] builds exactly this
//! set (no truncation), which is why `Auto` is proptested bit-identical to
//! `Exact` on every solver.
//!
//! [`PruningPolicy::TopK`] additionally truncates to the `k` best-scoring
//! candidates per paper. When a paper had more than `k` positive-score
//! reviewers its bound is positive and pruning becomes **lossy but
//! bounded**: a stage-WGRAP solved over candidate edges only loses at most
//! `Σ_p bound(p)` objective versus the dense stage
//! ([`CandidateSet::stage_loss_bound`]). Solvers whose tie-breaking cannot
//! be certified statically (the LAP-based SDGA stages, BRGG's per-paper
//! branch-and-bound, local search's proposal sampling) treat `Auto` as
//! `Exact` and only prune under an explicit `TopK`.
//!
//! # Storage: one `Arc` slab per paper row
//!
//! Each paper's candidate list lives in its own `Arc`-shared slab rather
//! than one global CSR arena. Cloning a set (the epoch copy-on-write path)
//! bumps `P` refcounts instead of copying `O(nnz)` entries, and
//! [`CandidateSet::patch_reviewer`] rewrites only the rows the patched
//! reviewer actually appears in or enters — every other row stays shared
//! with the previous epoch. Row granularity (not multi-row pages) matters
//! here: one reviewer touches a uniform scatter of papers, so pages
//! spanning many rows would nearly all be copied on every patch.

use super::context::ScoreContext;
use super::par;
use std::sync::Arc;

/// How aggressively a solver may prune its reviewer scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruningPolicy {
    /// No pruning: scan all `R` reviewers everywhere (the reference path).
    #[default]
    Exact,
    /// Keep the `k` highest-scoring candidates per paper. Lossy when a paper
    /// has more than `k` positive-score reviewers; the per-paper loss is
    /// bounded by [`CandidateSet::bound`].
    TopK(usize),
    /// Keep every positive-score candidate (no truncation): always
    /// certified, so gain-ranking solvers prune bit-identically to
    /// [`PruningPolicy::Exact`]; solvers that cannot certify fall back to
    /// the dense path.
    Auto,
}

impl PruningPolicy {
    /// The candidate set this policy prescribes over `ctx`: `None` for
    /// [`Exact`](PruningPolicy::Exact), the context's shared untruncated set
    /// for [`Auto`](PruningPolicy::Auto), a fresh truncated build for
    /// [`TopK`](PruningPolicy::TopK).
    pub fn resolve<'c>(
        self,
        ctx: &'c ScoreContext<'_>,
    ) -> Option<std::borrow::Cow<'c, CandidateSet>> {
        match self {
            PruningPolicy::Exact => None,
            PruningPolicy::Auto => Some(std::borrow::Cow::Borrowed(ctx.auto_candidates())),
            PruningPolicy::TopK(k) => {
                Some(std::borrow::Cow::Owned(CandidateSet::build(ctx, Some(k))))
            }
        }
    }

    /// [`resolve`](PruningPolicy::resolve) for consumers whose pruning is
    /// lossy-only — SDGA stage LAPs, BRGG's BBA pool, local-search
    /// sampling, where tie-breaking is order-dependent so `Auto` certifies
    /// only the dense path: `TopK` builds a truncated set, `Exact` and
    /// `Auto` return `None`.
    pub fn resolve_lossy(self, ctx: &ScoreContext<'_>) -> Option<CandidateSet> {
        match self {
            PruningPolicy::Exact | PruningPolicy::Auto => None,
            PruningPolicy::TopK(k) => Some(CandidateSet::build(ctx, Some(k))),
        }
    }
}

impl std::fmt::Display for PruningPolicy {
    /// The canonical spelling [`FromStr`](std::str::FromStr) round-trips:
    /// `exact`, `auto`, `topk:K`. Request keys and wire responses use this.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PruningPolicy::Exact => f.write_str("exact"),
            PruningPolicy::Auto => f.write_str("auto"),
            PruningPolicy::TopK(k) => write!(f, "topk:{k}"),
        }
    }
}

impl std::str::FromStr for PruningPolicy {
    type Err = String;

    /// Parse `exact`, `auto`, or `topk:K` / `top-k:K`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let l = s.to_ascii_lowercase();
        match l.as_str() {
            "exact" => return Ok(PruningPolicy::Exact),
            "auto" => return Ok(PruningPolicy::Auto),
            _ => {}
        }
        if let Some(k) = l.strip_prefix("topk:").or_else(|| l.strip_prefix("top-k:")) {
            return k
                .parse::<usize>()
                .ok()
                .filter(|&k| k > 0)
                .map(PruningPolicy::TopK)
                .ok_or_else(|| format!("bad top-k count in '{s}'"));
        }
        Err(format!("unknown pruning policy '{s}' (expected exact | auto | topk:K)"))
    }
}

/// Summary of per-paper candidate support, for picking `k` without trial
/// and error (`wgrap check` prints this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageStats {
    /// Fewest positive-score reviewers over any paper.
    pub min: usize,
    /// 25th percentile.
    pub p25: usize,
    /// Median.
    pub median: usize,
    /// 75th percentile.
    pub p75: usize,
    /// Most positive-score reviewers over any paper.
    pub max: usize,
}

/// One paper's candidate slab: reviewer ids ascending, scores aligned.
/// Shared across epoch clones behind an `Arc`; copied on write by
/// [`CandidateSet::patch_reviewer`] only when this row changes.
#[derive(Debug, Clone, Default)]
struct CandRow {
    reviewer: Vec<u32>,
    score: Vec<f64>,
}

/// Per-paper reviewer candidate lists (one `Arc` slab per paper — see the
/// module docs' storage section), with pair scores and exclusion bounds.
/// Built once from a [`ScoreContext`]; see the module docs for the
/// certification rule.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    num_reviewers: usize,
    /// Per paper: the candidate slab, `Arc`-shared across epochs.
    rows: Vec<Arc<CandRow>>,
    /// Per paper: the largest pair score among excluded reviewers
    /// (`0.0` when nothing with positive score was excluded).
    bound: Vec<f64>,
    /// Per paper: number of reviewers with positive pair score, *before*
    /// any top-k truncation.
    support: Vec<u32>,
}

impl CandidateSet {
    /// Build candidate lists for every paper of `ctx`.
    ///
    /// `k = None` keeps every positive-score reviewer (the
    /// [`PruningPolicy::Auto`] set, always certified); `k = Some(n)` keeps
    /// the `n` best by `(score desc, reviewer asc)` and records the best
    /// excluded score as the paper's bound.
    ///
    /// For sparse-safe scorings the scan walks a topic → reviewers inverted
    /// index, touching only reviewers that overlap the paper's non-zero
    /// topics; other scorings (reviewer coverage can score zero-overlap
    /// pairs positively) scan all reviewers. Rows build in parallel under
    /// the `rayon` feature, bit-identically to the serial build.
    pub fn build(ctx: &ScoreContext<'_>, k: Option<usize>) -> Self {
        let by_topic = ctx.sparse().then(|| reviewer_topic_index(ctx));
        Self::build_with_index(ctx, k, by_topic.as_deref())
    }

    /// [`CandidateSet::build`] with a caller-supplied topic → reviewers
    /// index (as produced by [`reviewer_topic_index`]) for sparse-safe
    /// scorings — the service store maintains that index incrementally
    /// anyway, so sharing it avoids a second `O(R·T)` derivation pass on
    /// every rebuild. Pass `None` to scan all reviewers (the dense path
    /// non-sparse-safe scorings always take).
    pub fn build_with_index(
        ctx: &ScoreContext<'_>,
        k: Option<usize>,
        by_topic: Option<&[Vec<u32>]>,
    ) -> Self {
        let (num_p, num_r) = (ctx.num_papers(), ctx.num_reviewers());
        debug_assert!(by_topic.is_none() || ctx.sparse(), "index probing needs sparse safety");

        // (candidates sorted by reviewer asc, bound, positive support).
        type PaperRow = (Vec<(u32, f64)>, f64, u32);
        let rows: Vec<PaperRow> = par::map_indexed(num_p, |p| {
            let mut cands: Vec<(u32, f64)> = Vec::new();
            match &by_topic {
                Some(idx) => {
                    // Dedup by sort rather than an R-sized seen-buffer: the
                    // whole point of the inverted index is that the hit
                    // count is far below R on sparse instances.
                    let (topics, _) = ctx.paper_sparse(p);
                    let mut hits: Vec<u32> =
                        topics.iter().flat_map(|&t| idx[t as usize].iter().copied()).collect();
                    hits.sort_unstable();
                    hits.dedup();
                    for r in hits {
                        let s = ctx.pair_score(r as usize, p);
                        if s > 0.0 {
                            cands.push((r, s));
                        }
                    }
                }
                None => {
                    for r in 0..num_r {
                        let s = ctx.pair_score(r, p);
                        if s > 0.0 {
                            cands.push((r as u32, s));
                        }
                    }
                }
            }
            let support = cands.len() as u32;
            let bound = match k {
                Some(k) => truncate_row(&mut cands, k),
                None => 0.0,
            };
            (cands, bound, support)
        });

        let mut out = Vec::with_capacity(num_p);
        let mut bound = Vec::with_capacity(num_p);
        let mut support = Vec::with_capacity(num_p);
        for (cands, b, s) in rows {
            let (reviewer, score) = cands.into_iter().unzip();
            out.push(Arc::new(CandRow { reviewer, score }));
            bound.push(b);
            support.push(s);
        }
        Self { num_reviewers: num_r, rows: out, bound, support }
    }

    /// Number of papers.
    pub fn num_papers(&self) -> usize {
        self.bound.len()
    }

    /// Number of reviewers in the underlying context.
    pub fn num_reviewers(&self) -> usize {
        self.num_reviewers
    }

    /// Paper `p`'s candidates as `(reviewer ids ascending, pair scores)`.
    #[inline]
    pub fn candidates(&self, p: usize) -> (&[u32], &[f64]) {
        let row = &self.rows[p];
        (&row.reviewer, &row.score)
    }

    /// Number of candidates kept for paper `p`.
    #[inline]
    pub fn len(&self, p: usize) -> usize {
        self.rows[p].reviewer.len()
    }

    /// Are there no candidates at all (e.g. a zero-topic instance)?
    pub fn is_empty(&self) -> bool {
        self.rows.iter().all(|row| row.reviewer.is_empty())
    }

    /// Upper bound on any excluded reviewer's pair score — and therefore,
    /// by submodularity, on any excluded marginal gain under every group
    /// state — for paper `p`.
    #[inline]
    pub fn bound(&self, p: usize) -> f64 {
        self.bound[p]
    }

    /// Number of positive-score reviewers paper `p` had before truncation.
    #[inline]
    pub fn support(&self, p: usize) -> usize {
        self.support[p] as usize
    }

    /// Is pruning through this set exact-preserving for gain-ranking
    /// consumers (every exclusion bound exactly zero)?
    pub fn certified(&self) -> bool {
        self.bound.iter().all(|&b| b == 0.0)
    }

    /// Is reviewer `r` a kept candidate for paper `p`?
    #[inline]
    pub fn contains(&self, p: usize, r: usize) -> bool {
        let (rs, _) = self.candidates(p);
        rs.binary_search(&(r as u32)).is_ok()
    }

    /// `c(r, p)` if `r` is a kept candidate of `p`, else `0.0` (exact for
    /// certified sets, a lower bound otherwise).
    #[inline]
    pub fn score_of(&self, p: usize, r: usize) -> f64 {
        let (rs, ss) = self.candidates(p);
        match rs.binary_search(&(r as u32)) {
            Ok(i) => ss[i],
            Err(_) => 0.0,
        }
    }

    /// Worst-case objective loss of solving one stage-WGRAP over candidate
    /// edges only instead of the dense matrix: each paper's assigned
    /// reviewer is replaced by one of gain at most `bound(p)`.
    pub fn stage_loss_bound(&self) -> f64 {
        self.bound.iter().sum()
    }

    /// Bytes of score-state this set holds — the sparse counterpart of a
    /// dense `P × R × 8`-byte matrix, for memory accounting in benches and
    /// the store's snapshot-size stats. Content bytes, length-derived,
    /// deterministic.
    pub fn memory_bytes(&self) -> usize {
        self.rows
            .iter()
            .map(|row| {
                row.reviewer.len() * std::mem::size_of::<u32>()
                    + row.score.len() * std::mem::size_of::<f64>()
            })
            .sum::<usize>()
            + self.bound.len() * std::mem::size_of::<f64>()
            + self.support.len() * std::mem::size_of::<u32>()
    }

    /// Number of row slabs (one per paper) — the candidate side of the
    /// snapshot page count.
    pub fn num_pages(&self) -> usize {
        self.rows.len()
    }

    /// Row slabs physically shared with `other` at the same paper index
    /// (`Arc::ptr_eq`) — the structural-sharing metric across epochs.
    pub fn shared_rows_with(&self, other: &CandidateSet) -> usize {
        self.rows.iter().zip(other.rows.iter()).filter(|(a, b)| Arc::ptr_eq(a, b)).count()
    }

    /// Append each row slab's `(address, content bytes)` identity for
    /// cross-epoch retention accounting.
    pub fn page_identities(&self, out: &mut Vec<(usize, usize)>) {
        for row in &self.rows {
            out.push((
                Arc::as_ptr(row) as usize,
                row.reviewer.len() * std::mem::size_of::<u32>()
                    + row.score.len() * std::mem::size_of::<f64>(),
            ));
        }
    }

    /// Copy every shared row slab so this set owns its rows privately —
    /// the pre-paging full-copy layout, kept for the paged-vs-flat benches
    /// and the paged≡flat certification tests.
    pub fn unshare(&mut self) {
        for row in &mut self.rows {
            if Arc::strong_count(row) > 1 {
                *row = Arc::new(row.as_ref().clone());
            }
        }
    }

    /// Append one paper's candidate row to an **untruncated** (Auto) set:
    /// `row` must list every reviewer with positive pair score for the new
    /// paper, ascending by id, with the scores [`ScoreContext::pair_score`]
    /// would produce — exactly what [`CandidateSet::build`] computes, which
    /// is what keeps incremental maintenance bit-identical to a rebuild.
    /// The new paper's bound is `0.0` (nothing excluded) and its support is
    /// the row length, so the set stays certified. Existing rows stay
    /// shared: appending is a new slab, not a rewrite.
    pub fn append_paper(&mut self, row: &[(u32, f64)]) {
        debug_assert!(row.windows(2).all(|w| w[0].0 < w[1].0), "row must be ascending by id");
        debug_assert!(row.iter().all(|&(_, s)| s > 0.0), "auto rows hold positive scores only");
        let (reviewer, score) = row.iter().copied().unzip();
        self.rows.push(Arc::new(CandRow { reviewer, score }));
        self.bound.push(0.0);
        self.support.push(row.len() as u32);
    }

    /// Patch reviewer `r` across every paper of an **untruncated** (Auto)
    /// set: `scores` lists `(paper, new pair score)` for exactly the papers
    /// where `r` now scores positive (ascending by paper id); `r` is
    /// removed everywhere else. Growing the pool is allowed — `r` may be
    /// one past the current reviewer count (a freshly appended reviewer).
    ///
    /// This is the shared kernel behind `AddReviewer` (empty old presence),
    /// `RetireReviewer` (empty `scores`) and `PatchScores`. Only rows whose
    /// membership or score actually changes are copy-on-written (one
    /// binary search per paper decides); every other slab stays `Arc`-
    /// shared with the previous epoch, so the patch costs O(rows touched),
    /// not O(nnz). Untouched entries are never re-scored, which keeps the
    /// result bit-identical to [`CandidateSet::build`] on the patched
    /// context.
    pub fn patch_reviewer(&mut self, r: u32, scores: &[(u32, f64)]) {
        debug_assert!(scores.windows(2).all(|w| w[0].0 < w[1].0), "scores ascending by paper");
        debug_assert!(scores.iter().all(|&(_, s)| s > 0.0));
        assert!(
            (r as usize) <= self.num_reviewers,
            "reviewer {r} more than one past the pool ({})",
            self.num_reviewers
        );
        self.num_reviewers = self.num_reviewers.max(r as usize + 1);
        let mut next = scores.iter().copied().peekable();
        for p in 0..self.num_papers() {
            let insert = match next.peek() {
                Some(&(sp, s)) if sp as usize == p => {
                    next.next();
                    Some(s)
                }
                _ => None,
            };
            match (self.rows[p].reviewer.binary_search(&r), insert) {
                // Not present, not entering: the slab stays shared.
                (Err(_), None) => {}
                (Ok(i), Some(s)) => {
                    let row = Arc::make_mut(&mut self.rows[p]);
                    row.score[i] = s;
                }
                (Ok(i), None) => {
                    let row = Arc::make_mut(&mut self.rows[p]);
                    row.reviewer.remove(i);
                    row.score.remove(i);
                    self.support[p] = row.reviewer.len() as u32;
                }
                (Err(i), Some(s)) => {
                    let row = Arc::make_mut(&mut self.rows[p]);
                    row.reviewer.insert(i, r);
                    row.score.insert(i, s);
                    self.support[p] = row.reviewer.len() as u32;
                }
            }
        }
        debug_assert!(next.peek().is_none(), "scores reference papers beyond the set");
    }

    /// Distribution of per-paper positive support, for picking `k`.
    /// `None` for an instance with no papers.
    pub fn coverage_stats(&self) -> Option<CoverageStats> {
        if self.support.is_empty() {
            return None;
        }
        let mut s: Vec<u32> = self.support.clone();
        s.sort_unstable();
        let at = |q: f64| s[((s.len() - 1) as f64 * q).round() as usize] as usize;
        Some(CoverageStats {
            min: s[0] as usize,
            p25: at(0.25),
            median: at(0.5),
            p75: at(0.75),
            max: s[s.len() - 1] as usize,
        })
    }
}

/// The topic → reviewers inverted index over `ctx`'s expertise rows: per
/// topic, the reviewers with positive expertise, ids ascending. This is the
/// probe structure [`CandidateSet::build`] walks for sparse-safe scorings;
/// it is exposed so long-lived callers (the service store, which maintains
/// the index incrementally across updates) can hand a prebuilt copy to
/// [`CandidateSet::build_with_index`] instead of paying the `O(R·T)`
/// derivation twice.
pub fn reviewer_topic_index(ctx: &ScoreContext<'_>) -> Vec<Vec<u32>> {
    let mut idx = vec![Vec::new(); ctx.num_topics()];
    for r in 0..ctx.num_reviewers() {
        for (t, &e) in ctx.reviewer_row(r).iter().enumerate() {
            if e > 0.0 {
                idx[t].push(r as u32);
            }
        }
    }
    idx
}

/// The `TopK(k)` truncation of one candidate row, in place: rank by
/// `(score desc, reviewer asc)`, keep `k`, restore ascending-id order, and
/// return the best excluded score (the paper's bound; `0.0` when nothing
/// was cut). This is [`CandidateSet::build`]'s own truncation kernel,
/// exposed for single-row consumers (the routed JRA BBA setup, the service
/// batch executor) so every `TopK` path shares one comparator.
pub fn truncate_row(row: &mut Vec<(u32, f64)>, k: usize) -> f64 {
    if row.len() <= k {
        return 0.0;
    }
    row.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let bound = row[k].1;
    row.truncate(k);
    row.sort_by_key(|&(r, _)| r);
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;
    use crate::problem::Instance;
    use crate::score::Scoring;
    use crate::topic::TopicVector;

    #[test]
    fn auto_set_keeps_exactly_the_positive_scores() {
        for scoring in Scoring::ALL {
            let inst = random_instance(6, 8, 5, 2, 3);
            let ctx = ScoreContext::new(&inst, scoring);
            let cs = CandidateSet::build(&ctx, None);
            assert!(cs.certified());
            for p in 0..6 {
                for r in 0..8 {
                    let s = ctx.pair_score(r, p);
                    assert_eq!(cs.contains(p, r), s > 0.0, "{scoring:?} ({r},{p})");
                    if s > 0.0 {
                        assert_eq!(cs.score_of(p, r).to_bits(), s.to_bits());
                    }
                }
                assert_eq!(cs.support(p), cs.len(p));
            }
        }
    }

    #[test]
    fn sparse_instance_excludes_zero_overlap_reviewers() {
        let papers = vec![TopicVector::from_sparse(4, &[(0, 1.0)])];
        let reviewers = vec![
            TopicVector::from_sparse(4, &[(0, 0.9)]),
            TopicVector::from_sparse(4, &[(1, 0.9)]), // no overlap
            TopicVector::from_sparse(4, &[(0, 0.2), (1, 0.5)]),
        ];
        let inst = Instance::new(papers, reviewers, 1, 1).unwrap();
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let cs = CandidateSet::build(&ctx, None);
        let (rs, _) = cs.candidates(0);
        assert_eq!(rs, &[0, 2]);
        assert!(cs.certified());
        assert_eq!(cs.bound(0), 0.0);
    }

    #[test]
    fn topk_truncates_by_score_and_records_bound() {
        let inst = random_instance(5, 9, 4, 2, 11);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let full = CandidateSet::build(&ctx, None);
        let k = 3;
        let cs = CandidateSet::build(&ctx, Some(k));
        for p in 0..5 {
            assert!(cs.len(p) <= k);
            let (rs, ss) = cs.candidates(p);
            // Kept candidates are sorted by reviewer id...
            assert!(rs.windows(2).all(|w| w[0] < w[1]));
            // ... and are the top-k by (score desc, reviewer asc).
            let (frs, fss) = full.candidates(p);
            let mut ranked: Vec<(u32, f64)> =
                frs.iter().copied().zip(fss.iter().copied()).collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut want: Vec<(u32, f64)> = ranked.iter().take(k).copied().collect();
            want.sort_by_key(|&(r, _)| r);
            let got: Vec<(u32, f64)> = rs.iter().copied().zip(ss.iter().copied()).collect();
            assert_eq!(got, want);
            if full.len(p) > k {
                assert_eq!(cs.bound(p).to_bits(), ranked[k].1.to_bits());
                assert!(cs.bound(p) > 0.0);
            } else {
                assert_eq!(cs.bound(p), 0.0);
            }
            // Every excluded reviewer scores at most the bound.
            for r in 0..9 {
                if !cs.contains(p, r) {
                    assert!(ctx.pair_score(r, p) <= cs.bound(p));
                }
            }
            assert_eq!(cs.support(p), full.len(p));
        }
        assert!(cs.stage_loss_bound() >= 0.0);
        assert!(cs.memory_bytes() < full.memory_bytes() + 1);
    }

    #[test]
    fn huge_k_equals_auto() {
        let inst = random_instance(4, 7, 5, 2, 5);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let auto = CandidateSet::build(&ctx, None);
        let huge = CandidateSet::build(&ctx, Some(1000));
        for p in 0..4 {
            assert_eq!(auto.candidates(p), huge.candidates(p));
            assert_eq!(huge.bound(p), 0.0);
        }
        assert!(huge.certified());
    }

    #[test]
    fn patch_reviewer_cows_only_affected_rows() {
        let inst = random_instance(12, 10, 5, 2, 7);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let base = CandidateSet::build(&ctx, None);
        let mut patched = base.clone();
        assert_eq!(patched.shared_rows_with(&base), base.num_pages());

        // Retire reviewer 3: exactly the rows containing it are rewritten.
        let containing = (0..12).filter(|&p| base.contains(p, 3)).count();
        patched.patch_reviewer(3, &[]);
        assert_eq!(patched.shared_rows_with(&base), base.num_pages() - containing);
        for p in 0..12 {
            assert!(!patched.contains(p, 3));
            // The base set is frozen.
            assert_eq!(base.contains(p, 3), ctx.pair_score(3, p) > 0.0);
        }

        // Bit-identity with a from-scratch build on the retired instance.
        let mut want = inst.clone();
        want.set_reviewer_vector(3, TopicVector::zeros(5)).unwrap();
        let wctx = ScoreContext::new(&want, Scoring::WeightedCoverage);
        let wcs = CandidateSet::build(&wctx, None);
        for p in 0..12 {
            let ((grs, gss), (wrs, wss)) = (patched.candidates(p), wcs.candidates(p));
            assert_eq!(grs, wrs, "paper {p} ids");
            for (x, y) in gss.iter().zip(wss) {
                assert_eq!(x.to_bits(), y.to_bits(), "paper {p} scores");
            }
            assert_eq!(patched.support(p), wcs.support(p), "paper {p} support");
        }

        // Unsharing reconstructs private rows, contents unchanged.
        let mut flat = patched.clone();
        flat.unshare();
        assert_eq!(flat.shared_rows_with(&patched), 0);
        for p in 0..12 {
            assert_eq!(flat.candidates(p), patched.candidates(p));
        }
    }

    #[test]
    fn coverage_stats_summarise_support() {
        let inst = random_instance(9, 6, 4, 2, 1);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let cs = CandidateSet::build(&ctx, None);
        let stats = cs.coverage_stats().unwrap();
        assert!(stats.min <= stats.p25 && stats.p25 <= stats.median);
        assert!(stats.median <= stats.p75 && stats.p75 <= stats.max);
        assert!(stats.max <= 6);
    }

    #[test]
    fn policy_parses() {
        use std::str::FromStr;
        assert_eq!(PruningPolicy::from_str("exact").unwrap(), PruningPolicy::Exact);
        assert_eq!(PruningPolicy::from_str("Auto").unwrap(), PruningPolicy::Auto);
        assert_eq!(PruningPolicy::from_str("topk:16").unwrap(), PruningPolicy::TopK(16));
        assert_eq!(PruningPolicy::from_str("top-k:4").unwrap(), PruningPolicy::TopK(4));
        assert!(PruningPolicy::from_str("topk:0").is_err());
        assert!(PruningPolicy::from_str("bogus").is_err());
    }
}
