//! CRA quality and response-time experiments: Table 4, Figures 10/11/17/18,
//! Table 7.
//!
//! Each experiment generates the synthetic dataset(s) (Table 3
//! cardinalities), runs the six §5.2 methods, and prints the same rows the
//! paper reports. Independent (dataset, δp) cells run on scoped threads.

use crate::util::{banner, render_table, secs, timeit, RunConfig};
use parking_lot::Mutex;
use wgrap_core::assignment::Assignment;
use wgrap_core::cra::ideal::{ideal_assignment, IdealMode};
use wgrap_core::cra::CraAlgorithm;
use wgrap_core::engine::ScoreContext;
use wgrap_core::metrics;
use wgrap_core::prelude::{Instance, Scoring};
use wgrap_datagen::areas::{all_datasets, DB08, DM08, T08};
use wgrap_datagen::vectors::area_instance;
use wgrap_datagen::DatasetSpec;

const SCORING: Scoring = Scoring::WeightedCoverage;

/// Run every method on one instance, returning `(label, assignment, secs)`.
/// One flat [`ScoreContext`] is built per instance and shared by all six
/// solvers (engine dispatch); its build time is excluded from the per-method
/// timings, mirroring how the paper reports per-algorithm response time.
pub fn run_all_methods(inst: &Instance, seed: u64) -> Vec<(&'static str, Assignment, f64)> {
    let ctx = ScoreContext::new(inst, SCORING).with_seed(seed);
    CraAlgorithm::ALL
        .iter()
        .map(|&algo| {
            let solver = algo.solver();
            let (res, t) = timeit(|| solver.solve(&ctx));
            let a = res.unwrap_or_else(|e| panic!("{} failed: {e}", algo.label()));
            (algo.label(), a, t.as_secs_f64())
        })
        .collect()
}

fn instance_for(cfg: &RunConfig, spec: &DatasetSpec, delta_p: usize) -> Instance {
    area_instance(&cfg.scaled(spec), delta_p, cfg.seed)
}

/// Table 4: response time (s) of the approximate methods on DB08/DM08 at
/// δ ∈ {3, 5}.
pub fn table4(cfg: &RunConfig) {
    banner("Table 4: response time (s) of approximate methods");
    let mut rows = Vec::new();
    for spec in [DB08, DM08] {
        for delta_p in [3usize, 5] {
            let inst = instance_for(cfg, &spec, delta_p);
            let results = run_all_methods(&inst, cfg.seed);
            let mut row = vec![format!("{} (delta={delta_p})", spec.name)];
            row.extend(results.iter().map(|(_, _, t)| format!("{t:.1}")));
            rows.push(row);
        }
    }
    let headers = ["dataset", "SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA"];
    println!("{}", render_table(&headers, &rows));
}

/// Shared quality sweep: optimality ratio (Figures 10/17/18-style) and
/// superiority ratio of SDGA-SRA (Figures 11/17/18) for one dataset.
pub fn quality_for(cfg: &RunConfig, spec: &DatasetSpec, delta_ps: &[usize]) {
    banner(&format!(
        "Optimality & superiority ratios: {} ({} papers, {} reviewers at scale 1/{})",
        spec.name, spec.num_papers, spec.num_reviewers, cfg.scale
    ));
    let mut opt_rows = Vec::new();
    let mut sup_rows = Vec::new();
    for &delta_p in delta_ps {
        let inst = instance_for(cfg, spec, delta_p);
        let ideal = ideal_assignment(&inst, SCORING, IdealMode::Exact).expect("ideal");
        let results = run_all_methods(&inst, cfg.seed);

        let mut row = vec![delta_p.to_string()];
        row.extend(results.iter().map(|(_, a, _)| {
            format!("{:.1}%", 100.0 * metrics::optimality_ratio(&inst, SCORING, a, &ideal))
        }));
        opt_rows.push(row);

        let sra = &results.last().expect("SDGA-SRA ran").1;
        let mut row = vec![delta_p.to_string()];
        for (label, a, _) in &results[..4] {
            let s = metrics::superiority_ratio(&inst, SCORING, sra, a);
            let _ = label;
            row.push(format!("{:.1}% ({:.1}% tie)", 100.0 * s.better_or_equal(), 100.0 * s.tied));
        }
        sup_rows.push(row);
    }
    println!("Optimality ratio c(A)/c(A_I):");
    println!(
        "{}",
        render_table(&["delta_p", "SM", "ILP", "BRGG", "Greedy", "SDGA", "SDGA-SRA"], &opt_rows)
    );
    println!("Superiority ratio of SDGA-SRA over the baselines:");
    println!(
        "{}",
        render_table(&["delta_p", "vs SM", "vs ILP", "vs BRGG", "vs Greedy"], &sup_rows)
    );
}

/// Figures 10 & 11: DB08 and DM08, δp ∈ {3, 4, 5}.
pub fn fig10_11(cfg: &RunConfig) {
    for spec in [DB08, DM08] {
        quality_for(cfg, &spec, &[3, 4, 5]);
    }
}

/// Figure 17: Theory 2008.
pub fn fig17(cfg: &RunConfig) {
    quality_for(cfg, &T08, &[3, 4, 5]);
}

/// Figure 18: the three 2009 datasets.
pub fn fig18(cfg: &RunConfig) {
    use wgrap_datagen::areas::{DB09, DM09, T09};
    for spec in [T09, DB09, DM09] {
        quality_for(cfg, &spec, &[3, 4, 5]);
    }
}

/// Table 7: lowest coverage score, all six datasets × δp ∈ {3,4,5} × the
/// five methods the paper lists (SM, ILP, BRGG, Greedy, SDGA-SRA).
/// Cells across datasets are independent, so they run on scoped threads.
pub fn table7(cfg: &RunConfig) {
    banner("Table 7: lowest coverage score min_p c(A[p], p)");
    let datasets = all_datasets();
    let results: Mutex<Vec<(usize, Vec<Vec<String>>)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (di, spec) in datasets.iter().enumerate() {
            let results = &results;
            scope.spawn(move || {
                let mut block = Vec::new();
                for delta_p in [3usize, 4, 5] {
                    let inst = instance_for(cfg, spec, delta_p);
                    let all = run_all_methods(&inst, cfg.seed);
                    let mut row = vec![format!("{} d={delta_p}", spec.name)];
                    for (label, a, _) in &all {
                        if *label == "SDGA" {
                            continue; // Table 7 omits plain SDGA
                        }
                        row.push(format!("{:.2}", metrics::lowest_coverage(&inst, SCORING, a)));
                    }
                    block.push(row);
                }
                results.lock().push((di, block));
            });
        }
    });
    let mut blocks = results.into_inner();
    blocks.sort_by_key(|(di, _)| *di);
    let rows: Vec<Vec<String>> = blocks.into_iter().flat_map(|(_, b)| b).collect();
    println!("{}", render_table(&["dataset", "SM", "ILP", "BRGG", "Greedy", "SDGA-SRA"], &rows));
}

/// §5.2 detail: papers improved by SDGA-SRA over Greedy (the "389 out of
/// 617" remark) plus the response-time context.
pub fn improvement_counts(cfg: &RunConfig) {
    banner("SDGA-SRA vs Greedy: papers with strictly better coverage (DB08, delta=3)");
    let inst = instance_for(cfg, &DB08, 3);
    let (greedy, tg) = timeit(|| CraAlgorithm::Greedy.run(&inst, SCORING, cfg.seed).unwrap());
    let (sra, ts) = timeit(|| CraAlgorithm::SdgaSra.run(&inst, SCORING, cfg.seed).unwrap());
    let improved = metrics::papers_improved(&inst, SCORING, &sra, &greedy);
    println!(
        "{improved} of {} papers improved (Greedy {}s, SDGA-SRA {}s)",
        inst.num_papers(),
        secs(tg),
        secs(ts)
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RunConfig {
        RunConfig { scale: 40, seed: 7, ..Default::default() }
    }

    #[test]
    fn run_all_methods_produces_valid_assignments() {
        let cfg = tiny_cfg();
        let inst = instance_for(&cfg, &DB08, 3);
        for (label, a, _) in run_all_methods(&inst, cfg.seed) {
            a.validate(&inst).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    #[test]
    fn sdga_sra_dominates_sdga() {
        let cfg = tiny_cfg();
        let inst = instance_for(&cfg, &DM08, 3);
        let results = run_all_methods(&inst, cfg.seed);
        let by_label = |l: &str| {
            results
                .iter()
                .find(|(label, _, _)| *label == l)
                .map(|(_, a, _)| a.coverage_score(&inst, SCORING))
                .unwrap()
        };
        assert!(by_label("SDGA-SRA") >= by_label("SDGA") - 1e-9);
    }

    #[test]
    fn table7_smoke() {
        let cfg = RunConfig { scale: 60, seed: 3, ..Default::default() };
        table7(&cfg);
    }
}
