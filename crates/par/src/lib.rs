//! Deterministic data parallelism over `std::thread::scope`.
//!
//! Offline stand-in for the rayon dependency the engine's `rayon` feature
//! would normally pull in: the build environment cannot reach crates.io, so
//! `wgrap-core` gates this crate behind its `rayon` feature instead.
//!
//! Scheduling is an atomic-counter **work-stealing loop**: workers claim
//! small index batches from a shared counter and write each result into its
//! own pre-allocated output slot. Earlier versions split the range into one
//! contiguous chunk per worker, which goes pathological when per-index cost
//! is skewed — e.g. papers with fat candidate lists next to fully pruned
//! ones after top-k sparsification — leaving all but one worker idle while
//! the unlucky one drains its chunk. With self-scheduling the remaining
//! batches flow to whichever worker is free.
//!
//! Because every result is written **positionally** (slot `i` holds `f(i)`),
//! the output is bit-identical to the serial map regardless of thread
//! count, batch size, or scheduling order — the determinism requirement the
//! engine's equivalence guarantees rest on. Only the wall-clock varies.

use std::mem::{ManuallyDrop, MaybeUninit};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count used by the `par_*` helpers: `WGRAP_THREADS` if set,
/// otherwise the machine's available parallelism.
pub fn num_threads() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let n = std::env::var("WGRAP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
        });
    CACHED.store(n, Ordering::Relaxed);
    n
}

/// Parallel `(0..n).map(f).collect()`, deterministic in output order.
///
/// `f` must be a pure function of its index for the determinism guarantee
/// to mean anything; the engine only passes such closures. If `f` panics the
/// panic propagates after all workers stop; results already produced are
/// leaked (never dropped) in that case.
pub fn par_map_indexed<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }

    // A provenance-preserving Send wrapper for the output base pointer
    // (a usize round-trip would defeat Miri / strict-provenance checks).
    struct SendPtr<T>(*mut T);
    unsafe impl<T> Send for SendPtr<T> {}
    impl<T> Clone for SendPtr<T> {
        fn clone(&self) -> Self {
            Self(self.0)
        }
    }

    // Small batches so skewed per-index cost redistributes; large enough
    // that the shared counter is not contended per index.
    let batch = (n / (workers * 8)).clamp(1, 1024);
    let mut slots: Vec<MaybeUninit<U>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit<U> requires no initialisation.
    unsafe { slots.set_len(n) };
    let base = SendPtr(slots.as_mut_ptr());
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let f = &f;
            let next = &next;
            let base = base.clone();
            scope.spawn(move || {
                // Move the whole wrapper, not just its pointer field —
                // edition-2021 disjoint capture would otherwise capture the
                // raw `*mut`, which is not Send.
                let base = base;
                loop {
                    let lo = next.fetch_add(batch, Ordering::Relaxed);
                    if lo >= n {
                        break;
                    }
                    for i in lo..(lo + batch).min(n) {
                        let v = f(i);
                        // SAFETY: `fetch_add` hands out disjoint index
                        // ranges, so this worker is the only writer of slot
                        // `i`, and `slots` outlives the scope.
                        unsafe { (*base.0.add(i)).write(v) };
                    }
                }
            });
        }
    });

    // Every index in 0..n was claimed exactly once and the scope joined all
    // workers, so all n slots are initialised.
    let mut slots = ManuallyDrop::new(slots);
    let (ptr, len, cap) = (slots.as_mut_ptr(), slots.len(), slots.capacity());
    debug_assert_eq!(len, n);
    // SAFETY: `MaybeUninit<U>` has the same layout as `U` and all `len`
    // elements are initialised; ownership transfers to the new Vec.
    unsafe { Vec::from_raw_parts(ptr as *mut U, len, cap) }
}

/// Parallel `items.iter().map(f).collect()`, deterministic in output order.
pub fn par_map<T: Sync, U: Send, F: Fn(&T) -> U + Sync>(items: &[T], f: F) -> Vec<U> {
    par_map_indexed(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_serial_map() {
        let inputs: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = inputs.iter().map(|&x| x * x + 1).collect();
        let parallel = par_map(&inputs, |&x| x * x + 1);
        assert_eq!(serial, parallel);
        let indexed = par_map_indexed(1000, |i| (i as u64) * (i as u64) + 1);
        assert_eq!(serial, indexed);
    }

    #[test]
    fn tiny_and_empty_inputs() {
        assert_eq!(par_map_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn skewed_costs_keep_positional_order() {
        // A pathological skew for static chunking: the first indices are
        // thousands of times more expensive than the rest. Output must
        // still be the serial map, element for element.
        let work = |i: usize| -> u64 {
            let spins = if i < 8 { 20_000 } else { 10 };
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        };
        let serial: Vec<u64> = (0..300).map(work).collect();
        assert_eq!(par_map_indexed(300, work), serial);
    }

    #[test]
    fn non_copy_results_are_moved_correctly() {
        let out = par_map_indexed(257, |i| vec![i; i % 5]);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
            assert!(v.iter().all(|&x| x == i));
        }
    }
}
