//! Text-level synthetic corpus generation: the stand-in for the DBLP
//! abstracts the paper feeds to its Author-Topic Model.
//!
//! Ground truth: `T` topics, each a Dirichlet draw over a synthetic
//! vocabulary with a block of "anchor" words per topic (mimicking the
//! distinctive keyword clusters of Tables 8–9). Reviewers get area-clustered
//! topic mixtures and "publish" documents: each document samples tokens
//! from its authors' mixtures exactly as the ATM assumes. Submissions are
//! generated the same way from paper-level mixtures, so the ATM → EM
//! pipeline is exercised on data whose true vectors are known — letting
//! tests measure recovery quality, not just smoke.

use crate::areas::{Area, DatasetSpec};
use crate::vectors::area_topics;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use wgrap_topics::dirichlet::{sample_dirichlet, sample_symmetric_dirichlet};
use wgrap_topics::{Corpus, Document};

/// Generator settings.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Ground-truth topic count.
    pub num_topics: usize,
    /// Documents per reviewer (min, max inclusive).
    pub docs_per_author: (usize, usize),
    /// Tokens per document (min, max inclusive).
    pub words_per_doc: (usize, usize),
    /// Share of a topic's mass on its anchor-word block.
    pub anchor_mass: f64,
    /// Dirichlet concentration of reviewer mixtures over their area block.
    pub author_alpha: f64,
    /// Fraction of co-authored documents (two reviewers).
    pub coauthor_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            vocab_size: 1200,
            num_topics: 30,
            docs_per_author: (4, 12),
            words_per_doc: (40, 120),
            anchor_mass: 0.7,
            author_alpha: 0.3,
            coauthor_rate: 0.2,
        }
    }
}

/// A generated corpus with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// Reviewer publication records (the ATM training set).
    pub publications: Corpus,
    /// Submission word bags (inputs to EM folding-in).
    pub submissions: Vec<Vec<u32>>,
    /// Ground-truth topic-word distributions.
    pub true_phi: Vec<Vec<f64>>,
    /// Ground-truth reviewer mixtures.
    pub true_reviewer_theta: Vec<Vec<f64>>,
    /// Ground-truth submission mixtures.
    pub true_paper_theta: Vec<Vec<f64>>,
}

fn sample_categorical(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut pick = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        if pick < *w {
            return i;
        }
        pick -= w;
    }
    weights.len() - 1
}

fn ground_truth_phi(rng: &mut StdRng, cfg: &CorpusConfig) -> Vec<Vec<f64>> {
    let anchors_per_topic = cfg.vocab_size / cfg.num_topics;
    (0..cfg.num_topics)
        .map(|t| {
            let mut phi = sample_symmetric_dirichlet(rng, cfg.vocab_size, 0.05);
            for p in phi.iter_mut() {
                *p *= 1.0 - cfg.anchor_mass;
            }
            let block = sample_symmetric_dirichlet(rng, anchors_per_topic, 0.5);
            for (k, b) in block.into_iter().enumerate() {
                phi[t * anchors_per_topic + k] += cfg.anchor_mass * b;
            }
            phi
        })
        .collect()
}

fn area_mixture(rng: &mut StdRng, area: Area, cfg: &CorpusConfig) -> Vec<f64> {
    let core = area_topics(area, cfg.num_topics);
    let mut theta = vec![1e-4; cfg.num_topics];
    let mix = sample_dirichlet(rng, &vec![cfg.author_alpha; core.len()]);
    for (t, m) in core.zip(mix) {
        theta[t] = m;
    }
    let total: f64 = theta.iter().sum();
    theta.iter_mut().for_each(|x| *x /= total);
    theta
}

fn sample_doc(rng: &mut StdRng, theta: &[f64], phi: &[Vec<f64>], len: usize) -> Vec<u32> {
    (0..len)
        .map(|_| {
            let t = sample_categorical(rng, theta);
            sample_categorical(rng, &phi[t]) as u32
        })
        .collect()
}

/// Generate a full corpus for a dataset.
pub fn generate(spec: &DatasetSpec, cfg: &CorpusConfig, seed: u64) -> SyntheticCorpus {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let true_phi = ground_truth_phi(&mut rng, cfg);

    let true_reviewer_theta: Vec<Vec<f64>> =
        (0..spec.num_reviewers).map(|_| area_mixture(&mut rng, spec.area, cfg)).collect();

    let mut publications = Corpus::new(cfg.vocab_size, spec.num_reviewers);
    for a in 0..spec.num_reviewers {
        let docs = rng.random_range(cfg.docs_per_author.0..=cfg.docs_per_author.1);
        for _ in 0..docs {
            let len = rng.random_range(cfg.words_per_doc.0..=cfg.words_per_doc.1);
            let mut authors = vec![a as u32];
            if spec.num_reviewers > 1 && rng.random::<f64>() < cfg.coauthor_rate {
                let co = rng.random_range(0..spec.num_reviewers);
                if co != a {
                    authors.push(co as u32);
                }
            }
            // Token mixture: average of the authors' mixtures (each token's
            // author is latent; using the mean matches ATM's uniform
            // author choice in expectation).
            let theta: Vec<f64> = (0..cfg.num_topics)
                .map(|t| {
                    authors.iter().map(|&x| true_reviewer_theta[x as usize][t]).sum::<f64>()
                        / authors.len() as f64
                })
                .collect();
            let words = sample_doc(&mut rng, &theta, &true_phi, len);
            publications.push(Document::new(words, authors));
        }
    }

    let true_paper_theta: Vec<Vec<f64>> =
        (0..spec.num_papers).map(|_| area_mixture(&mut rng, spec.area, cfg)).collect();
    let submissions: Vec<Vec<u32>> = true_paper_theta
        .iter()
        .map(|theta| {
            let len = rng.random_range(cfg.words_per_doc.0..=cfg.words_per_doc.1);
            sample_doc(&mut rng, theta, &true_phi, len)
        })
        .collect();

    SyntheticCorpus { publications, submissions, true_phi, true_reviewer_theta, true_paper_theta }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::DatasetSpec;

    fn tiny_spec() -> DatasetSpec {
        DatasetSpec {
            name: "TINY",
            area: Area::Databases,
            year: 2008,
            num_papers: 8,
            num_reviewers: 6,
        }
    }

    fn tiny_cfg() -> CorpusConfig {
        CorpusConfig {
            vocab_size: 120,
            num_topics: 6,
            docs_per_author: (3, 5),
            words_per_doc: (30, 50),
            ..Default::default()
        }
    }

    #[test]
    fn shapes_match_spec() {
        let sc = generate(&tiny_spec(), &tiny_cfg(), 1);
        assert_eq!(sc.true_reviewer_theta.len(), 6);
        assert_eq!(sc.submissions.len(), 8);
        assert_eq!(sc.true_phi.len(), 6);
        assert_eq!(sc.publications.num_authors, 6);
        assert!(sc.publications.docs.len() >= 6 * 3);
        for doc in &sc.publications.docs {
            assert!(doc.words.len() >= 30 && doc.words.len() <= 50);
        }
    }

    #[test]
    fn ground_truth_is_normalised() {
        let sc = generate(&tiny_spec(), &tiny_cfg(), 2);
        for row in sc.true_phi.iter().chain(&sc.true_reviewer_theta).chain(&sc.true_paper_theta) {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&tiny_spec(), &tiny_cfg(), 3);
        let b = generate(&tiny_spec(), &tiny_cfg(), 3);
        assert_eq!(a.submissions, b.submissions);
        assert_eq!(a.publications.docs, b.publications.docs);
    }

    #[test]
    fn anchor_words_dominate_their_topic() {
        let cfg = tiny_cfg();
        let sc = generate(&tiny_spec(), &cfg, 4);
        let anchors = cfg.vocab_size / cfg.num_topics;
        for (t, phi) in sc.true_phi.iter().enumerate() {
            let anchor_mass: f64 = phi[t * anchors..(t + 1) * anchors].iter().sum();
            assert!(anchor_mass > 0.5, "topic {t} anchor mass {anchor_mass}");
        }
    }
}
