//! Stochastic Refinement Algorithm (SRA) — paper §4.4, Algorithm 3.
//!
//! Each round removes one reviewer from every paper's group — sampling
//! removals inversely to the probability `P(r|p)` that the pair belongs to
//! the optimal assignment (Eq. 10) — and refills all groups with one
//! Stage-WGRAP linear assignment. Rounds repeat until the best score has not
//! improved for `ω` consecutive rounds (the convergence threshold studied in
//! Figure 16) or a time budget expires.
//!
//! Eq. 10's probability model is TF-IDF-flavoured: a pair scores high when
//! `c(r, p)` is high *relative to r's total coverage mass over all papers*,
//! damped toward uniform `1/R` by the decay `e^{−λI}` as rounds accumulate.
//! The paper does not print its λ; we default to 0.1 and expose it.

use super::sdga::{solve_stage, solve_stage_sparse, LapBackend};
use crate::assignment::Assignment;
use crate::engine::{
    par, CandidateSet, GainProvider, GainTable, LegacyGains, PairMatrix, PruningPolicy,
    ScoreContext,
};
use crate::problem::Instance;
use crate::score::Scoring;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

/// Probability model for the removal step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemovalModel {
    /// Eq. 10: `max(1/R, e^{−λI}·c(r,p)/Σ_{p'} c(r,p'))`, normalised per paper.
    #[default]
    Coverage,
    /// The uniformity ablation mentioned in §4.4: `P(r|p) = 1/R`.
    Uniform,
}

/// Tuning knobs for [`refine`].
#[derive(Debug, Clone)]
pub struct SraOptions {
    /// Convergence threshold ω: stop after this many rounds without
    /// improvement (paper default 10).
    pub omega: usize,
    /// Decay rate λ in Eq. 10.
    pub lambda: f64,
    /// Removal probability model (Eq. 10 vs the uniform ablation).
    pub model: RemovalModel,
    /// Hard wall-clock budget; `None` = run to convergence.
    pub time_limit: Option<Duration>,
    /// Hard cap on refinement rounds.
    pub max_rounds: usize,
    /// RNG seed (the process is fully deterministic given the seed).
    pub seed: u64,
    /// LAP backend for the refill stage.
    pub backend: LapBackend,
    /// Independent refinement chains to run, seeded `seed + t`; the best
    /// outcome wins (ties to the lowest chain index, so the reduction is
    /// deterministic). With the `rayon` feature the chains run in parallel.
    pub trials: usize,
}

impl Default for SraOptions {
    fn default() -> Self {
        Self {
            omega: 10,
            lambda: 0.1,
            model: RemovalModel::Coverage,
            time_limit: None,
            max_rounds: 10_000,
            seed: 0,
            backend: LapBackend::Flow,
            trials: 1,
        }
    }
}

/// Outcome of a refinement run.
#[derive(Debug, Clone)]
pub struct SraOutcome {
    /// The best assignment observed (never worse than the input).
    pub assignment: Assignment,
    /// Its coverage score.
    pub score: f64,
    /// Rounds executed.
    pub rounds: usize,
    /// `(elapsed, best-so-far score)` after every round — the Figure 12
    /// refinement trace.
    pub trace: Vec<(Duration, f64)>,
}

/// Refine `initial` (typically an SDGA result) on the legacy boxed-vector
/// gain path. The search walks through possibly-worse intermediate
/// assignments — that is what lets it escape the local maxima that plain
/// local search gets stuck in (Figure 12) — but the returned assignment is
/// the best one seen. With `opts.trials > 1`, independent chains run (in
/// parallel under the `rayon` feature) and the best one wins.
pub fn refine(
    inst: &Instance,
    scoring: Scoring,
    initial: Assignment,
    opts: &SraOptions,
) -> SraOutcome {
    refine_trials(opts, |o| {
        refine_impl(inst, &mut LegacyGains::new(inst, scoring), initial.clone(), o, None)
    })
}

/// Refine over a [`ScoreContext`] (flat engine gains): the engine
/// counterpart of [`refine`], bit-identical given the same options.
pub fn refine_ctx(ctx: &ScoreContext<'_>, initial: Assignment, opts: &SraOptions) -> SraOutcome {
    refine_ctx_pruned(ctx, initial, opts, PruningPolicy::Exact)
}

/// [`refine_ctx`] with candidate pruning of the Eq. 10 removal model.
///
/// The removal step's only use of the `P × R` pair matrix is TF-IDF-style
/// relevance (`c(r,p)` against reviewer mass `Σ_{p'} c(r,p')`). With a
/// certified candidate set (always the case under [`PruningPolicy::Auto`])
/// every excluded pair score is exactly `0.0`, so masses, normalisers and
/// removal probabilities computed from candidate lists alone are
/// **bit-identical** to the dense ones (skipping a `+ 0.0` term is an IEEE
/// no-op on these non-negative sums) — while the `P × R` matrix is never
/// materialised. Under [`PruningPolicy::TopK`] truncated scores read as `0`
/// (lossy), and the refill stage also solves over candidate edges with a
/// dense fallback; under `Auto` the refill stays dense (stage-LAP
/// tie-breaking is not certifiable — see [`super::sdga::solve_ctx_pruned`]).
pub fn refine_ctx_pruned(
    ctx: &ScoreContext<'_>,
    initial: Assignment,
    opts: &SraOptions,
    pruning: PruningPolicy,
) -> SraOutcome {
    let topk = pruning.resolve_lossy(ctx);
    let removal = match pruning {
        PruningPolicy::Exact => None,
        PruningPolicy::Auto => Some(ctx.auto_candidates()),
        PruningPolicy::TopK(_) => topk.as_ref(),
    };
    refine_ctx_with_cands(ctx, initial, opts, removal, topk.is_some())
}

/// [`refine_ctx_pruned`] with pre-resolved candidate sets (`removal` feeds
/// the Eq. 10 model; `sparse_refill` additionally routes the refill stage
/// through the same set), so callers running several pruned phases over one
/// context (SDGA-SRA) build a `TopK` set once.
pub(crate) fn refine_ctx_with_cands(
    ctx: &ScoreContext<'_>,
    initial: Assignment,
    opts: &SraOptions,
    removal: Option<&CandidateSet>,
    sparse_refill: bool,
) -> SraOutcome {
    refine_trials(opts, |o| {
        refine_impl(
            ctx.instance(),
            &mut GainTable::new(ctx),
            initial.clone(),
            o,
            removal.map(|cs| (cs, sparse_refill)),
        )
    })
}

/// Fan out `opts.trials` independent chains (seeds `seed + t`) and keep the
/// best outcome; ties go to the lowest trial index, so the reduction order
/// is deterministic regardless of thread scheduling.
fn refine_trials(opts: &SraOptions, run: impl Fn(&SraOptions) -> SraOutcome + Sync) -> SraOutcome {
    let trials = opts.trials.max(1);
    if trials == 1 {
        return run(opts);
    }
    let outcomes = par::map_indexed(trials, |t| {
        run(&SraOptions { seed: opts.seed.wrapping_add(t as u64), ..opts.clone() })
    });
    outcomes
        .into_iter()
        .reduce(|best, cand| if cand.score > best.score { cand } else { best })
        .expect("trials >= 1")
}

/// Relevance surface behind Eq. 10: the dense `P × R` pair matrix, or a
/// candidate set serving `0.0` for excluded pairs (exact when certified).
enum Relevance<'a> {
    Dense(PairMatrix),
    Sparse(&'a CandidateSet),
}

impl Relevance<'_> {
    #[inline]
    fn get(&self, r: usize, p: usize) -> f64 {
        match self {
            Relevance::Dense(m) => m.get(r, p),
            Relevance::Sparse(cs) => cs.score_of(p, r),
        }
    }
}

fn refine_impl<P: GainProvider + Sync>(
    inst: &Instance,
    gains: &mut P,
    initial: Assignment,
    opts: &SraOptions,
    pruning: Option<(&CandidateSet, bool)>,
) -> SraOutcome {
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (num_p, num_r) = (inst.num_papers(), inst.num_reviewers());
    let scoring_score = |gains: &mut P, a: &Assignment| -> f64 {
        (0..num_p)
            .map(|p| {
                gains.rebuild(p, a.group(p));
                gains.score(p)
            })
            .sum()
    };

    let mut current = initial;
    let mut best = current.clone();
    let mut best_score = scoring_score(gains, &best);
    let mut trace = vec![(start.elapsed(), best_score)];
    if num_p == 0 || inst.delta_p() == 0 {
        return SraOutcome { assignment: best, score: best_score, rounds: 0, trace };
    }

    // Pairwise coverage c(r, p) and each reviewer's mass Σ_{p'} c(r, p')
    // (Algorithm 3 lines 1-2; O(P·R·T) once, row-parallel under `rayon`).
    // With a candidate set, mass accumulates over candidate scores only —
    // for each reviewer still in ascending-paper order, and skipped terms
    // are exactly `+ 0.0` when the set is certified, so the sums are
    // bit-identical to the dense ones without the P × R matrix.
    let pair_cov = match pruning {
        Some((cs, _)) => Relevance::Sparse(cs),
        None => Relevance::Dense(gains.pair_matrix()),
    };
    let mut reviewer_mass = vec![0.0f64; num_r];
    match &pair_cov {
        Relevance::Dense(m) => {
            for p in 0..num_p {
                for (r, &c) in m.paper_row(p).iter().enumerate() {
                    reviewer_mass[r] += c;
                }
            }
        }
        Relevance::Sparse(cs) => {
            for p in 0..num_p {
                let (rs, ss) = cs.candidates(p);
                for (&r, &s) in rs.iter().zip(ss) {
                    reviewer_mass[r as usize] += s;
                }
            }
        }
    }

    let mut stale_rounds = 0usize;
    let mut rounds = 0usize;
    while stale_rounds < opts.omega && rounds < opts.max_rounds {
        if let Some(tl) = opts.time_limit {
            if start.elapsed() >= tl {
                break;
            }
        }
        rounds += 1;
        let decay = (-opts.lambda * rounds as f64).exp();

        // Removal step: drop one reviewer per paper with probability
        // proportional to 1 − P(r|p) within the group.
        let mut loads = current.loads(num_r);
        for p in 0..num_p {
            let group = current.group(p);
            if group.is_empty() {
                continue;
            }
            // Eq. 10's per-pair probability from a raw relevance score.
            let u_of = |r: usize, score: f64| -> f64 {
                match opts.model {
                    RemovalModel::Uniform => 1.0 / num_r as f64,
                    RemovalModel::Coverage => {
                        let rel =
                            if reviewer_mass[r] > 0.0 { score / reviewer_mass[r] } else { 0.0 };
                        (decay * rel).max(1.0 / num_r as f64)
                    }
                }
            };
            let u = |r: usize| -> f64 { u_of(r, pair_cov.get(r, p)) };
            // Per-paper normaliser of Eq. 10 over the whole pool. On the
            // pruned path a two-pointer merge over the (reviewer-sorted)
            // candidate list replaces a binary search per reviewer; the
            // summands and their order are unchanged, so `z` stays
            // bit-identical to the dense loop.
            let z: f64 = match &pair_cov {
                Relevance::Dense(_) => (0..num_r).map(u).sum(),
                Relevance::Sparse(cs) => {
                    let (rs, ss) = cs.candidates(p);
                    let mut j = 0usize;
                    let mut z = 0.0;
                    for r in 0..num_r {
                        let score = if j < rs.len() && rs[j] as usize == r {
                            j += 1;
                            ss[j - 1]
                        } else {
                            0.0
                        };
                        z += u_of(r, score);
                    }
                    z
                }
            };
            let removal_weight: Vec<f64> =
                group.iter().map(|&r| (1.0 - u(r) / z).max(1e-12)).collect();
            let total: f64 = removal_weight.iter().sum();
            let mut pick = rng.random::<f64>() * total;
            let mut idx = group.len() - 1;
            for (i, w) in removal_weight.iter().enumerate() {
                if pick < *w {
                    idx = i;
                    break;
                }
                pick -= w;
            }
            let removed = current.group_mut(p).swap_remove(idx);
            loads[removed] -= 1;
        }

        // Refill step: one Stage-WGRAP over all papers; per-reviewer cap is
        // the remaining global workload (this is the "last stage of SDGA").
        for p in 0..num_p {
            gains.rebuild(p, current.group(p));
        }
        let papers: Vec<usize> = (0..num_p).collect();
        let refilled = match pruning {
            Some((cs, true)) => solve_stage_sparse(
                inst,
                gains,
                &loads,
                &current,
                &papers,
                inst.delta_r(),
                opts.backend,
                cs,
            )
            .or_else(|_| {
                solve_stage(inst, gains, &loads, &current, &papers, inst.delta_r(), opts.backend)
            }),
            _ => solve_stage(inst, gains, &loads, &current, &papers, inst.delta_r(), opts.backend),
        };
        match refilled {
            Ok(pairs) => {
                for (r, p) in pairs {
                    current.assign(r, p);
                }
            }
            Err(_) => {
                // Refill impossible (pathological COI structure): restore
                // from the best-known assignment and count the round stale.
                current = best.clone();
            }
        }

        let score = scoring_score(gains, &current);
        if score > best_score + 1e-12 {
            best_score = score;
            best = current.clone();
            stale_rounds = 0;
        } else {
            stale_rounds += 1;
        }
        trace.push((start.elapsed(), best_score));
    }

    SraOutcome { assignment: best, score: best_score, rounds, trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;
    use crate::cra::{exact, sdga};

    #[test]
    fn never_worse_than_input() {
        for seed in 0..5 {
            let inst = random_instance(10, 7, 5, 3, seed);
            let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
            let before = initial.coverage_score(&inst, Scoring::WeightedCoverage);
            let opts = SraOptions { omega: 5, seed, ..Default::default() };
            let out = refine(&inst, Scoring::WeightedCoverage, initial, &opts);
            assert!(out.score >= before - 1e-12);
            out.assignment.validate(&inst).unwrap();
            assert!(
                (out.assignment.coverage_score(&inst, Scoring::WeightedCoverage) - out.score).abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn trace_is_monotone_nondecreasing() {
        let inst = random_instance(8, 6, 4, 2, 3);
        let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
        let out = refine(
            &inst,
            Scoring::WeightedCoverage,
            initial,
            &SraOptions { omega: 8, ..Default::default() },
        );
        for w in out.trace.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        assert_eq!(out.trace.len(), out.rounds + 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = random_instance(8, 6, 4, 2, 5);
        let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
        let opts = SraOptions { omega: 6, seed: 42, ..Default::default() };
        let a = refine(&inst, Scoring::WeightedCoverage, initial.clone(), &opts);
        let b = refine(&inst, Scoring::WeightedCoverage, initial, &opts);
        assert_eq!(a.score, b.score);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn approaches_exact_optimum_on_tiny_instances() {
        let mut hits = 0;
        let total = 5;
        for seed in 0..total {
            let inst = random_instance(3, 4, 3, 2, 50 + seed);
            let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
            let opts = SraOptions { omega: 30, seed, ..Default::default() };
            let out = refine(&inst, Scoring::WeightedCoverage, initial, &opts);
            let opt = exact::solve(&inst, Scoring::WeightedCoverage)
                .unwrap()
                .coverage_score(&inst, Scoring::WeightedCoverage);
            if (out.score - opt).abs() < 1e-6 {
                hits += 1;
            }
            assert!(out.score <= opt + 1e-9);
        }
        assert!(hits >= 3, "SRA found the optimum on only {hits}/{total} tiny instances");
    }

    #[test]
    fn pruned_auto_refine_is_bit_identical() {
        use crate::engine::ScoreContext;
        for seed in 0..4 {
            let inst = random_instance(8, 6, 4, 2, seed);
            let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage).with_seed(seed);
            let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
            let opts = SraOptions { omega: 6, seed, ..Default::default() };
            let dense = refine_ctx(&ctx, initial.clone(), &opts);
            let pruned = refine_ctx_pruned(&ctx, initial, &opts, PruningPolicy::Auto);
            assert_eq!(dense.assignment, pruned.assignment, "seed={seed}");
            assert_eq!(dense.score.to_bits(), pruned.score.to_bits());
            assert_eq!(dense.rounds, pruned.rounds);
        }
    }

    #[test]
    fn topk_refine_stays_monotone_and_valid() {
        use crate::engine::ScoreContext;
        let inst = random_instance(8, 6, 4, 2, 13);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage).with_seed(13);
        let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
        let before = initial.coverage_score(&inst, Scoring::WeightedCoverage);
        let opts = SraOptions { omega: 5, seed: 13, ..Default::default() };
        let out = refine_ctx_pruned(&ctx, initial, &opts, PruningPolicy::TopK(3));
        assert!(out.score >= before - 1e-12);
        out.assignment.validate(&inst).unwrap();
    }

    #[test]
    fn uniform_model_runs() {
        let inst = random_instance(6, 5, 4, 2, 9);
        let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
        let opts = SraOptions { omega: 4, model: RemovalModel::Uniform, ..Default::default() };
        let out = refine(&inst, Scoring::WeightedCoverage, initial, &opts);
        out.assignment.validate(&inst).unwrap();
    }

    #[test]
    fn respects_time_limit() {
        let inst = random_instance(10, 7, 5, 3, 1);
        let initial = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
        let opts = SraOptions {
            omega: usize::MAX,
            max_rounds: usize::MAX,
            time_limit: Some(Duration::from_millis(50)),
            ..Default::default()
        };
        let start = Instant::now();
        let _ = refine(&inst, Scoring::WeightedCoverage, initial, &opts);
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
