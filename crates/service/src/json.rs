//! Minimal JSON for the wire protocol — vendored because the build
//! environment has no registry access (no `serde`).
//!
//! Covers exactly what newline-delimited request/response framing needs:
//! a [`Json`] value tree, a strict recursive-descent parser, and a
//! deterministic writer. Objects preserve insertion order (they are
//! association lists, not maps), and numbers round-trip through Rust's
//! shortest-representation `f64` formatting — so a response serialised
//! twice is byte-identical, which the golden-file smoke tests rely on.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always an `f64`, as in JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member `key` of an object (`None` for missing keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts).
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience: an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: an array of numbers.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                debug_assert!(n.is_finite(), "JSON cannot carry NaN/inf");
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parse one JSON value from `text`, requiring nothing but whitespace after
/// it. Errors are human-readable with a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E') | Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a low unit in 0xDC00..=0xDFFF
                            // must follow a high one.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                if self.peek() != Some(b'u') {
                                    return Err("bad surrogate pair".into());
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("bad surrogate pair".into());
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(code).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!(
                        "unescaped control character 0x{b:02x} in string at byte {}",
                        self.pos
                    ));
                }
                Some(_) => {
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consume `uXXXX` (the caller consumed the backslash) and return the
    /// code unit. On entry `pos` points at the `u`; on exit it is past the
    /// last hex digit.
    fn hex4(&mut self) -> Result<u32, String> {
        self.pos += 1; // 'u'
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|_| "bad \\u escape")?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_basic_values() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "-1.5",
            "1e3",
            "\"hi\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null]}",
        ] {
            let v = parse(text).unwrap();
            let again = parse(&v.to_string()).unwrap();
            assert_eq!(v, again, "{text}");
        }
    }

    #[test]
    fn numbers_roundtrip_bitwise() {
        for n in [0.1, 0.30000000000000004, 1.0 / 3.0, 5e-324, 1.7976931348623157e308] {
            let text = Json::Num(n).to_string();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap().to_bits(), n.to_bits());
        }
    }

    #[test]
    fn object_access_preserves_order() {
        let v = parse("{\"b\":1,\"a\":2}").unwrap();
        assert_eq!(v.get("b").and_then(Json::as_usize), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_usize), Some(2));
        assert_eq!(v.to_string(), "{\"b\":1,\"a\":2}");
        assert!(v.get("c").is_none());
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndAé");
        let written = Json::Str("x\n\"\\\t\u{1}".into()).to_string();
        assert_eq!(written, "\"x\\n\\\"\\\\\\t\\u0001\"");
        assert_eq!(parse(&written).unwrap().as_str().unwrap(), "x\n\"\\\t\u{1}");
    }

    #[test]
    fn surrogate_pairs() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
        let escaped = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(escaped.as_str().unwrap(), "😀");
    }

    #[test]
    fn rejects_malformed() {
        for text in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\"}",
            "nul",
            "1 2",
            "nan",
            "[1]]",
            // Invalid surrogate pairs: lone high, high + non-low escape.
            r#""\ud800""#,
            r#""\ud800\ue000""#,
            r#""\ud800x""#,
            // Raw (unescaped) control characters inside strings.
            "\"a\tb\"",
            "\"a\u{1}b\"",
        ] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn as_usize_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-3").unwrap().as_usize(), None);
    }
}
