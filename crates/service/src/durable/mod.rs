//! Durability for the versioned store: a write-ahead log of admitted
//! update batches, periodic snapshot checkpoints, and crash recovery.
//!
//! # What is logged, and when
//!
//! Every admitted [`Update`] batch is serialized into
//! one epoch-stamped, length-prefixed, CRC-checksummed frame ([`frame`])
//! and appended to the append-only WAL ([`wal`]) **before**
//! [`PendingUpdate::publish`](crate::store::PendingUpdate::publish) swaps
//! the snapshot `Arc` — an epoch is never visible to readers (and so never
//! acknowledged to a client) unless its batch is in the log. fsync timing
//! is configurable ([`FsyncPolicy`]); the publish path holds the store's
//! builder gate across append + fsync, so log order always equals epoch
//! order.
//!
//! Every `--checkpoint-every` epochs (default
//! [`DEFAULT_CHECKPOINT_EVERY`]) the just-published snapshot is written as
//! a full checkpoint ([`checkpoint`]) — serialized straight off the shared
//! `Arc` snapshot, so nothing is copied — and the WAL is compacted
//! (truncated) behind it.
//!
//! On startup, [`recover`] loads the newest valid checkpoint, replays the
//! WAL past it, truncates any torn or corrupt tail, and hands back a store
//! bit-identical to the uninterrupted run at the last durable epoch.
//!
//! # Invariance contract
//!
//! Durability never changes answer bytes: the logged updates replay
//! through the exact same incremental path that built the live state, and
//! the `apply ≡ rebuild` proptests certify that path bit-identical to a
//! from-scratch build. With `--data-dir` off the subsystem is entirely
//! absent — not a no-op mode, but `None`.

pub mod checkpoint;
pub mod frame;
pub mod recovery;
pub mod wal;

pub use recovery::{recover, RecoveryInfo};
pub use wal::FsyncPolicy;

use crate::store::{Snapshot, Update};
use crate::telemetry::{Counter, Gauge, Histogram, Telemetry};
use crate::{Error, Result};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use wal::Wal;

/// Default checkpoint cadence: a full snapshot checkpoint (and WAL
/// compaction) every this many published epochs.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 64;

/// Configuration for a durable store: where state lives, when the WAL is
/// fsync'd, and how often checkpoints are cut.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// The data directory (created if missing).
    pub dir: PathBuf,
    /// WAL fsync policy.
    pub fsync: FsyncPolicy,
    /// Checkpoint every N published epochs.
    pub checkpoint_every: u64,
}

impl DurableOptions {
    /// Options for `dir` with the defaults: fsync `always`, checkpoint
    /// every [`DEFAULT_CHECKPOINT_EVERY`] epochs.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync: FsyncPolicy::default(),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }
}

/// Deterministic durability counters for the protocol v2 `stats` section:
/// everything here is derived from session content (bytes, frames,
/// epochs), never from wall clocks, so golden sessions can pin it down.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityStats {
    /// Current WAL file length in bytes (magic + frames).
    pub wal_bytes: u64,
    /// Frames currently in the WAL (drops to 0 at each compaction).
    pub wal_frames: u64,
    /// WAL fsyncs issued since startup.
    pub fsyncs: u64,
    /// Epoch of the last batch whose append was followed by an fsync
    /// (0 until the first synced append).
    pub last_fsync_epoch: u64,
    /// Checkpoints written since startup.
    pub checkpoints: u64,
    /// Checkpoints that failed to write (state stays safe in the WAL).
    pub checkpoint_failures: u64,
    /// Epoch of the newest checkpoint written this session (0 if none).
    pub last_checkpoint_epoch: u64,
    /// The configured fsync policy.
    pub fsync_policy: FsyncPolicy,
    /// The configured checkpoint cadence.
    pub checkpoint_every: u64,
    /// What startup recovery found and did.
    pub recovered: RecoveryInfo,
}

/// Mutable checkpoint/fsync bookkeeping behind one small lock.
#[derive(Debug, Default)]
struct DurState {
    checkpoints: u64,
    checkpoint_failures: u64,
    last_checkpoint_epoch: u64,
    last_fsync_epoch: u64,
}

/// Pre-resolved durability series of the telemetry registry.
#[derive(Debug)]
struct DurableMetrics {
    wal_appends: Arc<Counter>,
    wal_bytes_total: Arc<Counter>,
    wal_fsyncs: Arc<Counter>,
    checkpoints: Arc<Counter>,
    checkpoint_failures: Arc<Counter>,
    group_commits: Arc<Counter>,
    wal_bytes: Arc<Gauge>,
    wal_frames: Arc<Gauge>,
    append_seconds: Arc<Histogram>,
    fsync_seconds: Arc<Histogram>,
    checkpoint_seconds: Arc<Histogram>,
}

/// The durability sink a [`VersionedStore`](crate::store::VersionedStore)
/// carries when serving from a `--data-dir`: the open WAL, the checkpoint
/// cadence, and what recovery found at startup. Constructed only by
/// [`recover`]; the store's publish path drives it.
#[derive(Debug)]
pub struct Durability {
    dir: PathBuf,
    checkpoint_every: u64,
    wal: Mutex<Wal>,
    state: Mutex<DurState>,
    recovery: RecoveryInfo,
    met: Option<DurableMetrics>,
}

impl Durability {
    pub(crate) fn new(
        dir: PathBuf,
        wal: Wal,
        checkpoint_every: u64,
        recovery: RecoveryInfo,
    ) -> Self {
        Self {
            dir,
            checkpoint_every: checkpoint_every.max(1),
            wal: Mutex::new(wal),
            state: Mutex::new(DurState::default()),
            recovery,
            met: None,
        }
    }

    /// What startup recovery found and did.
    pub fn recovery(&self) -> RecoveryInfo {
        self.recovery
    }

    /// The configured checkpoint cadence.
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// The configured fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.wal.lock().expect("wal lock").policy()
    }

    /// Append `epoch`'s batch to the WAL and fsync per policy. Called by
    /// the publish path *before* the snapshot swap — on error nothing was
    /// published and the caller surfaces the failure.
    pub(crate) fn log_batch(&self, epoch: u64, updates: &[Update]) -> Result<()> {
        let mut wal = self.wal.lock().expect("wal lock");
        let append_start = Instant::now();
        let bytes = wal
            .append(epoch, updates)
            .map_err(|e| Error::Io(format!("WAL append at epoch {epoch}: {e}")))?;
        let append = append_start.elapsed();
        let fsync_start = Instant::now();
        let synced =
            wal.maybe_sync().map_err(|e| Error::Io(format!("WAL fsync at epoch {epoch}: {e}")))?;
        let fsync = fsync_start.elapsed();
        if synced {
            self.state.lock().expect("durability state lock").last_fsync_epoch = epoch;
        }
        if let Some(met) = &self.met {
            met.wal_appends.inc();
            met.wal_bytes_total.add(bytes);
            met.wal_bytes.set(wal.bytes() as i64);
            met.wal_frames.set(wal.frames() as i64);
            met.append_seconds.observe_duration(append);
            if synced {
                met.wal_fsyncs.inc();
                met.fsync_seconds.observe_duration(fsync);
            }
        }
        Ok(())
    }

    /// Open a group-commit wave: while the returned guard (and any
    /// overlapping one) lives, `Batch`-policy per-append fsyncs are
    /// deferred, and one fsync covering every append of the wave runs when
    /// the outermost guard drops. The server brackets each update
    /// request's admission with a wave, so a burst of concurrent updates
    /// costs one fsync instead of one per batch. `Always` acks stay
    /// per-append — a wave never weakens that policy's contract.
    pub fn begin_wave(&self) -> FsyncWave<'_> {
        self.wal.lock().expect("wal lock").wave_enter();
        FsyncWave { durability: self }
    }

    /// Is `epoch` on the checkpoint cadence?
    pub(crate) fn should_checkpoint(&self, epoch: u64) -> bool {
        epoch.is_multiple_of(self.checkpoint_every)
    }

    /// Write a checkpoint of the just-published snapshot, then compact the
    /// WAL behind it and drop older checkpoints. A failure leaves every
    /// frame in the WAL (nothing is lost); the caller reports it without
    /// failing the already-visible publish.
    pub(crate) fn checkpoint(&self, snap: &Snapshot) -> Result<()> {
        let start = Instant::now();
        let result: std::io::Result<()> = (|| {
            checkpoint::write_checkpoint(&self.dir, snap)?;
            // The checkpoint is durable: every WAL frame at or before its
            // epoch is now redundant, and the log holds nothing newer
            // (publish runs this under the builder gate).
            self.wal.lock().expect("wal lock").reset()?;
            checkpoint::remove_older(&self.dir, snap.epoch());
            Ok(())
        })();
        let elapsed = start.elapsed();
        let mut state = self.state.lock().expect("durability state lock");
        match result {
            Ok(()) => {
                state.checkpoints += 1;
                state.last_checkpoint_epoch = snap.epoch();
                drop(state);
                if let Some(met) = &self.met {
                    met.checkpoints.inc();
                    met.checkpoint_seconds.observe_duration(elapsed);
                    let wal = self.wal.lock().expect("wal lock");
                    met.wal_bytes.set(wal.bytes() as i64);
                    met.wal_frames.set(wal.frames() as i64);
                }
                Ok(())
            }
            Err(e) => {
                state.checkpoint_failures += 1;
                drop(state);
                if let Some(met) = &self.met {
                    met.checkpoint_failures.inc();
                }
                Err(Error::Io(format!("checkpoint at epoch {}: {e}", snap.epoch())))
            }
        }
    }

    /// Flush and fsync the WAL (regardless of policy) and write the
    /// clean-shutdown marker, so the next startup can prove the log is
    /// complete. Called when `serve` drains cleanly (stdin EOF, listener
    /// close).
    pub fn shutdown_clean(&self) -> Result<()> {
        let mut wal = self.wal.lock().expect("wal lock");
        wal.sync().map_err(|e| Error::Io(format!("WAL fsync at shutdown: {e}")))?;
        recovery::write_marker(&self.dir, wal.bytes(), wal.frames())
            .map_err(|e| Error::Io(format!("write clean-shutdown marker: {e}")))
    }

    /// The deterministic counters for the v2 `stats` `"durability"`
    /// section.
    pub fn stats(&self) -> DurabilityStats {
        let wal = self.wal.lock().expect("wal lock");
        let state = self.state.lock().expect("durability state lock");
        DurabilityStats {
            wal_bytes: wal.bytes(),
            wal_frames: wal.frames(),
            fsyncs: wal.fsyncs(),
            last_fsync_epoch: state.last_fsync_epoch,
            checkpoints: state.checkpoints,
            checkpoint_failures: state.checkpoint_failures,
            last_checkpoint_epoch: state.last_checkpoint_epoch,
            fsync_policy: wal.policy(),
            checkpoint_every: self.checkpoint_every,
            recovered: self.recovery,
        }
    }

    /// The wave boundary: run the deferred group-commit fsync if this was
    /// the outermost wave and it owes one.
    fn end_wave(&self) {
        let mut wal = self.wal.lock().expect("wal lock");
        if !wal.wave_exit() {
            return;
        }
        let start = Instant::now();
        // An fsync failure here cannot be surfaced to any single request
        // (the wave's participants were already acked under the Batch
        // policy's bounded-loss contract); the next flush point will
        // retry the same data.
        let synced = wal.sync().is_ok();
        let elapsed = start.elapsed();
        if synced {
            self.state.lock().expect("durability state lock").last_fsync_epoch = wal.last_epoch();
        }
        if let Some(met) = &self.met {
            if synced {
                met.group_commits.inc();
                met.wal_fsyncs.inc();
                met.fsync_seconds.observe_duration(elapsed);
            }
        }
    }

    /// Register the durability series in `telemetry` and record into them
    /// from now on: `wal_{appends,fsyncs}_total`, `wal_bytes_total`,
    /// `checkpoints_total`, `checkpoint_failures_total`, the `wal_bytes` /
    /// `wal_frames` gauges, the `wal_{append,fsync}_seconds` /
    /// `checkpoint_seconds` histograms, and one-shot recovery gauges
    /// (`recovery_epochs`, `recovery_frames_replayed`,
    /// `recovery_truncated_tail_bytes`) plus a `recovery_seconds`
    /// observation.
    pub(crate) fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let met = DurableMetrics {
            wal_appends: telemetry.counter("wal_appends_total"),
            wal_bytes_total: telemetry.counter("wal_bytes_total"),
            wal_fsyncs: telemetry.counter("wal_fsyncs_total"),
            checkpoints: telemetry.counter("checkpoints_total"),
            checkpoint_failures: telemetry.counter("checkpoint_failures_total"),
            group_commits: telemetry.counter("wal_group_commits_total"),
            wal_bytes: telemetry.gauge("wal_bytes"),
            wal_frames: telemetry.gauge("wal_frames"),
            append_seconds: telemetry.histogram("wal_append_seconds"),
            fsync_seconds: telemetry.histogram("wal_fsync_seconds"),
            checkpoint_seconds: telemetry.histogram("checkpoint_seconds"),
        };
        {
            let wal = self.wal.lock().expect("wal lock");
            met.wal_bytes.set(wal.bytes() as i64);
            met.wal_frames.set(wal.frames() as i64);
        }
        telemetry.gauge("recovery_epochs").set(self.recovery.epochs as i64);
        telemetry.gauge("recovery_frames_replayed").set(self.recovery.frames_replayed as i64);
        telemetry
            .gauge("recovery_truncated_tail_bytes")
            .set(self.recovery.truncated_tail_bytes as i64);
        telemetry.histogram("recovery_seconds").observe_duration(self.recovery.duration);
        self.met = Some(met);
    }
}

/// RAII handle for one group-commit wave — see [`Durability::begin_wave`].
/// Dropping the outermost guard runs the deferred covering fsync.
#[derive(Debug)]
pub struct FsyncWave<'a> {
    durability: &'a Durability,
}

impl Drop for FsyncWave<'_> {
    fn drop(&mut self) {
        self.durability.end_wave();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Update;
    use wgrap_core::prelude::{Instance, Scoring};
    use wgrap_core::topic::TopicVector;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wgrap-durable-{tag}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn overlapping_waves_commit_with_one_fsync() {
        let dir = tmpdir("wave");
        let opts =
            DurableOptions { dir: dir.clone(), fsync: FsyncPolicy::Batch, checkpoint_every: 1_000 };
        let inst = Instance::new(
            vec![TopicVector::new(vec![0.5, 0.5])],
            vec![TopicVector::new(vec![0.9, 0.1]), TopicVector::new(vec![0.1, 0.9])],
            1,
            2,
        )
        .unwrap();
        let (store, _info) = recover(opts, inst, Scoring::WeightedCoverage, 7).unwrap();
        let durability = store.durability().expect("durable store");
        let base = durability.stats().fsyncs;
        let add = |v: f64| Update::AddReviewer {
            name: None,
            expertise: TopicVector::new(vec![v, 1.0 - v]),
        };
        let outer = durability.begin_wave();
        let inner = durability.begin_wave();
        store.apply(&[add(0.3)]).unwrap();
        store.apply(&[add(0.7)]).unwrap();
        drop(inner);
        assert_eq!(durability.stats().fsyncs, base, "no sync while a wave is open");
        drop(outer);
        let stats = durability.stats();
        assert_eq!(stats.fsyncs, base + 1, "one fsync covered both batches");
        assert_eq!(stats.last_fsync_epoch, 2);
        // An empty wave is free.
        drop(durability.begin_wave());
        assert_eq!(durability.stats().fsyncs, base + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
