//! The durability contract: **crash anywhere, recover the last durable
//! epoch, bit for bit.**
//!
//! The core proptest runs a durable store through a random update
//! sequence (checkpoints included), then simulates a crash at **every
//! byte offset** of the resulting WAL — not just frame boundaries — and
//! recovers from the truncated directory. The recovered snapshot must be
//! bit-identical (via the same [`assert_snapshot_bit_eq`] the
//! `apply ≡ rebuild` contract uses) to an uninterrupted reference run at
//! the last epoch whose frame survived whole, for all four scorings.
//! CI runs this with the `rayon` feature on and off.
//!
//! Deterministic companions pin down the clean-shutdown marker protocol,
//! post-recovery appends, and the refuse-to-guess error paths (solver
//! settings mismatch, unrecoverable epoch gap after checkpoint loss).

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use wgrap_core::prelude::{Instance, Scoring};
use wgrap_core::topic::TopicVector;
use wgrap_service::durable::wal::scan_wal;
use wgrap_service::testutil::{assert_snapshot_bit_eq, reference_apply};
use wgrap_service::{durable, DurableOptions, FsyncPolicy, Update};

/// A unique scratch directory per call — no `tempfile` dependency; unique
/// across processes (pid) and within one (counter).
fn tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wgrap-durable-pt-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn sparse_topic_vector(dim: usize) -> impl Strategy<Value = TopicVector> {
    (proptest::collection::vec(0.0..1.0f64, dim), proptest::collection::vec(any::<bool>(), dim))
        .prop_map(|(mut v, mask)| {
            for (w, drop) in v.iter_mut().zip(mask) {
                if drop {
                    *w = 0.0;
                }
            }
            if v.iter().sum::<f64>() <= 0.0 {
                v[0] = 1.0;
            }
            TopicVector::new(v).normalized()
        })
}

/// An update before id resolution — same shape as the `apply ≡ rebuild`
/// proptests, so the durable replay exercises the same update space.
#[derive(Debug, Clone)]
enum RawUpdate {
    AddPaper { topics: TopicVector, coi_seed: u32 },
    AddReviewer { expertise: TopicVector },
    RetireReviewer { seed: u32 },
    PatchScores { seed: u32, expertise: TopicVector },
}

fn raw_update(dim: usize) -> impl Strategy<Value = RawUpdate> {
    (0u32..4, sparse_topic_vector(dim), any::<u32>()).prop_map(|(kind, v, seed)| match kind {
        0 => RawUpdate::AddPaper { topics: v, coi_seed: seed },
        1 => RawUpdate::AddReviewer { expertise: v },
        2 => RawUpdate::RetireReviewer { seed },
        _ => RawUpdate::PatchScores { seed, expertise: v },
    })
}

fn resolve(inst: &Instance, raws: &[RawUpdate]) -> Vec<Update> {
    let (mut num_p, mut num_r) = (inst.num_papers(), inst.num_reviewers());
    let capacity_left = |num_p: usize, num_r: usize, inst: &Instance| {
        num_r * inst.delta_r() >= (num_p + 1) * inst.delta_p()
    };
    let mut out = Vec::new();
    for raw in raws {
        match raw {
            RawUpdate::AddPaper { topics, coi_seed } => {
                if !capacity_left(num_p, num_r, inst) {
                    continue;
                }
                let coi = if coi_seed % 3 == 0 && num_r > 0 {
                    vec![(coi_seed / 3) % num_r as u32]
                } else {
                    Vec::new()
                };
                out.push(Update::AddPaper { name: None, topics: topics.clone(), coi });
                num_p += 1;
            }
            RawUpdate::AddReviewer { expertise } => {
                out.push(Update::AddReviewer { name: None, expertise: expertise.clone() });
                num_r += 1;
            }
            RawUpdate::RetireReviewer { seed } => {
                out.push(Update::RetireReviewer { reviewer: seed % num_r as u32 });
            }
            RawUpdate::PatchScores { seed, expertise } => {
                out.push(Update::PatchScores {
                    reviewer: seed % num_r as u32,
                    expertise: expertise.clone(),
                });
            }
        }
    }
    out
}

fn instance_strategy(dim: usize) -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(sparse_topic_vector(dim), 2..4),
        proptest::collection::vec(sparse_topic_vector(dim), 4..7),
        1usize..3,
    )
        .prop_map(move |(papers, reviewers, delta_p)| {
            let delta_p = delta_p.min(reviewers.len());
            let delta_r = Instance::minimal_delta_r(papers.len(), reviewers.len(), delta_p) + 2;
            Instance::new(papers, reviewers, delta_p, delta_r).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The acceptance contract: run a durable store through an update
    /// sequence, then crash it at **every byte offset** of the WAL and
    /// recover. Each recovery must land exactly on the last epoch whose
    /// frame is whole — bit-identical to the uninterrupted reference run
    /// at that epoch — with the torn tail truncated and accounted for in
    /// [`RecoveryInfo`], across all four scorings and checkpoint
    /// cadences from every-epoch to never.
    #[test]
    fn crash_at_any_byte_recovers_last_durable_epoch(
        inst in instance_strategy(3),
        raws in proptest::collection::vec(raw_update(3), 1..6),
        seed in 0u64..500,
        cadence_sel in 0usize..4,
    ) {
        let updates = resolve(&inst, &raws);
        let checkpoint_every = [1, 2, 4, u64::MAX][cadence_sel];
        for scoring in Scoring::ALL {
            let dir = tmpdir("crash");
            let opts = DurableOptions {
                dir: dir.clone(),
                // `Never` keeps the setup run fast; the crash is simulated
                // by byte truncation, so fsync timing is irrelevant here.
                fsync: FsyncPolicy::Never,
                checkpoint_every,
            };
            let (store, info) =
                durable::recover(opts.clone(), inst.clone(), scoring, seed).expect("fresh dir");
            prop_assert!(info.clean, "a fresh dir counts as a clean start");
            prop_assert_eq!(info.epochs, 0);
            for u in &updates {
                store.apply(std::slice::from_ref(u)).expect("durable apply");
            }
            let ck_epoch = store.durability().expect("durability attached").stats()
                .last_checkpoint_epoch;
            drop(store);

            let wal_path = dir.join("wal.log");
            let full = std::fs::read(&wal_path).expect("read wal");
            let scan = scan_wal(&dir).expect("scan full wal");
            prop_assert_eq!(scan.valid_bytes as usize, full.len(), "full wal must be valid");
            prop_assert_eq!(scan.truncated_bytes, 0);
            prop_assert_eq!(
                ck_epoch + scan.records.len() as u64,
                updates.len() as u64,
                "wal must hold exactly the epochs past the last checkpoint"
            );

            for cut in 0..=full.len() {
                std::fs::write(&wal_path, &full[..cut]).expect("truncate wal");
                let (rec, info) = durable::recover(opts.clone(), inst.clone(), scoring, seed)
                    .unwrap_or_else(|e| panic!("recover at cut {cut}: {e}"));
                // The frames wholly inside the prefix are durable; the
                // rest of the prefix is a torn tail.
                let frames = scan.records.iter().take_while(|r| r.end_offset as usize <= cut)
                    .count();
                let durable_epoch = ck_epoch + frames as u64;
                let valid = if frames > 0 {
                    scan.records[frames - 1].end_offset as usize
                } else if cut >= 8 {
                    8 // just the magic
                } else {
                    0 // not even a whole magic: everything is tail
                };
                prop_assert_eq!(rec.epoch(), durable_epoch, "cut {}", cut);
                prop_assert_eq!(info.epochs, durable_epoch);
                prop_assert_eq!(info.frames_replayed, frames as u64);
                prop_assert_eq!(info.checkpoint_epoch, ck_epoch);
                prop_assert_eq!(info.truncated_tail_bytes, (cut - valid) as u64, "cut {}", cut);
                // No marker was written (we crashed): only the genuinely
                // fresh dir may report clean.
                prop_assert_eq!(info.clean, ck_epoch == 0 && cut == 0, "cut {}", cut);
                let want = reference_apply(&inst, scoring, seed, &updates[..durable_epoch as usize])
                    .expect("reference applies");
                assert_snapshot_bit_eq(&rec.snapshot(), &want);
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// The clean-shutdown marker protocol: a drained store leaves a marker the
/// next recovery consumes (`clean: true`), and because the marker is
/// deleted on read, a crash *after* that startup reads as unclean again.
/// Recovered stores keep accepting durable writes.
#[test]
fn clean_shutdown_marker_roundtrip_and_post_recovery_appends() {
    let inst = Instance::new(
        vec![TopicVector::new(vec![0.6, 0.4]), TopicVector::new(vec![0.3, 0.7])],
        vec![
            TopicVector::new(vec![0.9, 0.1]),
            TopicVector::new(vec![0.2, 0.8]),
            TopicVector::new(vec![0.5, 0.5]),
        ],
        1,
        2,
    )
    .expect("valid instance");
    let dir = tmpdir("marker");
    let opts = DurableOptions { fsync: FsyncPolicy::Always, checkpoint_every: 2, dir: dir.clone() };
    let add = |v: Vec<f64>| Update::AddReviewer { name: None, expertise: TopicVector::new(v) };

    let (store, _) =
        durable::recover(opts.clone(), inst.clone(), Scoring::WeightedCoverage, 7).expect("fresh");
    store.apply(&[add(vec![0.1, 0.9])]).expect("applies");
    store.apply(&[add(vec![0.7, 0.3])]).expect("applies");
    store.apply(&[add(vec![0.4, 0.6])]).expect("applies");
    store.durability().expect("durable").shutdown_clean().expect("clean shutdown");
    drop(store);

    // First restart: the marker attests the log, so the start is clean.
    let (store, info) = durable::recover(opts.clone(), inst.clone(), Scoring::WeightedCoverage, 7)
        .expect("recover");
    assert!(info.clean, "marker must prove the shutdown clean");
    assert_eq!(info.epochs, 3);
    assert_eq!(info.checkpoint_epoch, 2);
    assert_eq!(info.frames_replayed, 1, "only the epoch past the checkpoint replays");
    assert_eq!(info.truncated_tail_bytes, 0);
    // The recovered store is live: keep publishing durable epochs.
    assert_eq!(store.apply(&[add(vec![0.2, 0.8])]).expect("post-recovery apply"), 4);
    drop(store); // crash: no shutdown_clean, and the marker was consumed

    let (store, info) =
        durable::recover(opts, inst, Scoring::WeightedCoverage, 7).expect("recover again");
    assert!(!info.clean, "the marker is single-use; a later crash is unclean");
    assert_eq!(info.epochs, 4, "the post-recovery epoch was durable");
    assert_eq!(store.epoch(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// Recovery refuses to guess: a data dir checkpointed under one
/// scoring/seed cannot silently serve under another.
#[test]
fn recovery_rejects_mismatched_solver_settings() {
    let inst = Instance::new(
        vec![TopicVector::new(vec![1.0, 0.0])],
        vec![TopicVector::new(vec![0.9, 0.1]), TopicVector::new(vec![0.1, 0.9])],
        1,
        1,
    )
    .expect("valid instance");
    let dir = tmpdir("mismatch");
    let opts = DurableOptions { fsync: FsyncPolicy::Never, checkpoint_every: 1, dir: dir.clone() };
    let (store, _) =
        durable::recover(opts.clone(), inst.clone(), Scoring::WeightedCoverage, 7).expect("fresh");
    store
        .apply(&[Update::AddReviewer { name: None, expertise: TopicVector::new(vec![0.5, 0.5]) }])
        .expect("applies"); // checkpoint_every=1: epoch 1 is checkpointed
    drop(store);

    let err = durable::recover(opts.clone(), inst.clone(), Scoring::WeightedCoverage, 8)
        .expect_err("seed mismatch must fail");
    assert!(err.to_string().contains("seed=7"), "should name the recorded settings: {err}");
    let err = durable::recover(opts, inst, Scoring::DotProduct, 7)
        .expect_err("scoring mismatch must fail");
    assert!(err.to_string().contains("scoring=weighted"), "names recorded scoring: {err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Losing a checkpoint the WAL was compacted behind leaves an epoch gap
/// that no amount of replay can bridge — recovery must say so instead of
/// silently serving stale state.
#[test]
fn recovery_reports_unrecoverable_gap_after_checkpoint_loss() {
    let inst = Instance::new(
        vec![TopicVector::new(vec![1.0, 0.0])],
        vec![TopicVector::new(vec![0.9, 0.1]), TopicVector::new(vec![0.1, 0.9])],
        1,
        1,
    )
    .expect("valid instance");
    let dir = tmpdir("gap");
    let opts = DurableOptions { fsync: FsyncPolicy::Never, checkpoint_every: 2, dir: dir.clone() };
    let (store, _) =
        durable::recover(opts.clone(), inst.clone(), Scoring::WeightedCoverage, 7).expect("fresh");
    let add = |v: Vec<f64>| Update::AddReviewer { name: None, expertise: TopicVector::new(v) };
    store.apply(&[add(vec![0.5, 0.5])]).expect("applies");
    store.apply(&[add(vec![0.3, 0.7])]).expect("applies"); // checkpoint at 2, wal reset
    store.apply(&[add(vec![0.8, 0.2])]).expect("applies"); // wal holds only epoch 3
    drop(store);
    std::fs::remove_file(dir.join("checkpoint-2.ckpt")).expect("lose the checkpoint");

    let err =
        durable::recover(opts, inst, Scoring::WeightedCoverage, 7).expect_err("gap must fail");
    assert!(err.to_string().contains("unrecoverable"), "should report the gap: {err}");
    std::fs::remove_dir_all(&dir).ok();
}
