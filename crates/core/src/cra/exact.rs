//! Exhaustive optimal WGRAP solver (test oracle).
//!
//! The paper never computes the true optimum `O` at scale — the search space
//! is `C(R, δp)^P` — but tiny instances are enumerable, which is how we
//! validate SDGA's approximation ratio and the baselines empirically.

use crate::assignment::Assignment;
use crate::error::{Error, Result};
use crate::problem::Instance;
use crate::score::{RunningGroup, Scoring};

/// Exact optimum by depth-first enumeration over papers with a submodular
/// upper bound for pruning. Panics if the instance is beyond the guard
/// (`C(R, δp)^P` combinations is capped at ~10^8).
pub fn solve(inst: &Instance, scoring: Scoring) -> Result<Assignment> {
    let (num_p, num_r) = (inst.num_papers(), inst.num_reviewers());
    let per_paper = binomial(num_r, inst.delta_p());
    assert!(
        (per_paper as f64).powi(num_p as i32) < 1e8,
        "instance too large for exhaustive search"
    );

    // Per-paper upper bound: best group ignoring workloads (JRA optimum).
    let ub: Vec<f64> = (0..num_p)
        .map(|p| {
            let problem = crate::jra::JraProblem::from_instance(inst, p).with_scoring(scoring);
            crate::jra::bba::solve(&problem)
                .map(|r| r.score)
                .ok_or_else(|| Error::Infeasible(format!("paper {p} has too few candidates")))
        })
        .collect::<Result<_>>()?;
    let mut ub_suffix = vec![0.0; num_p + 1];
    for p in (0..num_p).rev() {
        ub_suffix[p] = ub_suffix[p + 1] + ub[p];
    }

    let mut best: Option<(f64, Vec<Vec<usize>>)> = None;
    let mut loads = vec![0usize; num_r];
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); num_p];

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        inst: &Instance,
        scoring: Scoring,
        p: usize,
        score_so_far: f64,
        ub_suffix: &[f64],
        loads: &mut Vec<usize>,
        groups: &mut Vec<Vec<usize>>,
        best: &mut Option<(f64, Vec<Vec<usize>>)>,
    ) {
        if p == inst.num_papers() {
            if best.as_ref().is_none_or(|(b, _)| score_so_far > *b) {
                *best = Some((score_so_far, groups.clone()));
            }
            return;
        }
        if let Some((b, _)) = best {
            if score_so_far + ub_suffix[p] <= *b {
                return;
            }
        }
        // Enumerate delta_p-subsets of feasible reviewers for paper p.
        let candidates: Vec<usize> = (0..inst.num_reviewers())
            .filter(|&r| loads[r] < inst.delta_r() && !inst.is_coi(r, p))
            .collect();
        let k = inst.delta_p();
        if candidates.len() < k {
            return;
        }
        let mut combo = vec![0usize; k];
        fn combos(
            candidates: &[usize],
            k: usize,
            start: usize,
            depth: usize,
            combo: &mut Vec<usize>,
            visit: &mut impl FnMut(&[usize]),
        ) {
            if depth == k {
                visit(combo);
                return;
            }
            for i in start..=candidates.len() - (k - depth) {
                combo[depth] = candidates[i];
                combos(candidates, k, i + 1, depth + 1, combo, visit);
            }
        }
        let mut groups_local: Vec<Vec<usize>> = Vec::new();
        combos(&candidates, k, 0, 0, &mut combo, &mut |g| {
            groups_local.push(g.to_vec());
        });
        for g in groups_local {
            let mut rg = RunningGroup::new(scoring, inst.paper(p));
            for &r in &g {
                rg.add(inst.reviewer(r));
                loads[r] += 1;
            }
            groups[p] = g.clone();
            recurse(
                inst,
                scoring,
                p + 1,
                score_so_far + rg.score(),
                ub_suffix,
                loads,
                groups,
                best,
            );
            for &r in &g {
                loads[r] -= 1;
            }
            groups[p].clear();
        }
    }

    recurse(inst, scoring, 0, 0.0, &ub_suffix, &mut loads, &mut groups, &mut best);

    match best {
        Some((_, groups)) => {
            let a = Assignment::from_groups(groups);
            a.validate(inst)?;
            Ok(a)
        }
        None => Err(Error::Infeasible("no complete assignment exists".into())),
    }
}

fn binomial(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc = 1u64;
    for i in 0..k {
        acc = acc * (n - i) as u64 / (i + 1) as u64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;

    #[test]
    fn binomial_values() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(10, 3), 120);
        assert_eq!(binomial(4, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn optimum_dominates_every_heuristic() {
        use crate::cra::{greedy, sdga};
        for seed in 0..4 {
            let inst = random_instance(3, 4, 3, 2, seed);
            let opt = solve(&inst, Scoring::WeightedCoverage).unwrap();
            opt.validate(&inst).unwrap();
            let c_opt = opt.coverage_score(&inst, Scoring::WeightedCoverage);
            for a in [
                greedy::solve(&inst, Scoring::WeightedCoverage).unwrap(),
                sdga::solve(&inst, Scoring::WeightedCoverage).unwrap(),
            ] {
                assert!(a.coverage_score(&inst, Scoring::WeightedCoverage) <= c_opt + 1e-9);
            }
        }
    }

    #[test]
    fn single_paper_matches_bba() {
        let inst = random_instance(1, 6, 3, 3, 11);
        let opt = solve(&inst, Scoring::WeightedCoverage).unwrap();
        let problem = crate::jra::JraProblem::from_instance(&inst, 0);
        let jra = crate::jra::bba::solve(&problem).unwrap();
        assert!((opt.coverage_score(&inst, Scoring::WeightedCoverage) - jra.score).abs() < 1e-9);
    }

    #[test]
    fn respects_workload_in_search() {
        // 2 papers, 2 reviewers, delta_p = 1, delta_r = 1: the only valid
        // assignments are the two perfect matchings.
        let inst = random_instance(2, 2, 3, 1, 9);
        let opt = solve(&inst, Scoring::WeightedCoverage).unwrap();
        let loads = opt.loads(2);
        assert_eq!(loads, vec![1, 1]);
    }
}
