//! [`ScoreContext`]: the flat structure-of-arrays view of an instance.

use super::par;
use crate::problem::Instance;
use crate::score::Scoring;
use crate::topic::TopicVector;

/// Flat scoring context shared by every solver.
///
/// Holds row-major copies of the reviewer expertise matrix (`R × T`) and the
/// paper matrix (`P × T`), per-paper normalisers, and a CSR view over each
/// paper's non-zero topics. Construction is `O((R + P)·T)` once; afterwards
/// every kernel works on contiguous `&[f64]` rows with no boxed-slice
/// pointer chasing and no per-call allocation.
///
/// All kernels are **bit-identical** to the legacy
/// [`Scoring`]/[`RunningGroup`](crate::score::RunningGroup) arithmetic: same
/// iteration order, same `/ total` vs `* (1/total)` convention per call
/// site, and the sparse view is only used for scorings where skipping a
/// zero paper weight is an exact no-op ([`Scoring::sparse_safe`]).
#[derive(Debug, Clone)]
pub struct ScoreContext<'a> {
    inst: &'a Instance,
    scoring: Scoring,
    seed: u64,
    dim: usize,
    reviewers: Vec<f64>,
    papers: Vec<f64>,
    paper_totals: Vec<f64>,
    /// `1/total` (or `0` for a zero paper), the `RunningGroup` convention.
    paper_inv_totals: Vec<f64>,
    csr_ptr: Vec<usize>,
    csr_idx: Vec<u32>,
    csr_val: Vec<f64>,
    /// Lazily-built `P × R` pair-score matrix, shared by every solver that
    /// runs on this context (SM, ARAP-ILP, SRA) so the O(P·R·T) build
    /// happens once per context, not once per solve.
    pair_cache: std::sync::OnceLock<PairMatrix>,
    /// Lazily-built untruncated candidate set (the [`PruningPolicy::Auto`]
    /// lists), shared by every solver pruning under `Auto` on this context.
    ///
    /// [`PruningPolicy::Auto`]: super::candidates::PruningPolicy::Auto
    auto_candidates: std::sync::OnceLock<super::candidates::CandidateSet>,
}

impl<'a> ScoreContext<'a> {
    /// Build the flat view of `inst` under `scoring` (seed 0).
    pub fn new(inst: &'a Instance, scoring: Scoring) -> Self {
        let dim = inst.num_topics();
        let flatten = |vs: &[TopicVector]| -> Vec<f64> {
            let mut out = Vec::with_capacity(vs.len() * dim);
            for v in vs {
                out.extend_from_slice(v.as_slice());
            }
            out
        };
        let papers = flatten(inst.papers());
        let reviewers = flatten(inst.reviewers());
        let paper_totals: Vec<f64> = inst.papers().iter().map(TopicVector::total).collect();
        let paper_inv_totals: Vec<f64> =
            paper_totals.iter().map(|&t| if t > 0.0 { 1.0 / t } else { 0.0 }).collect();
        let mut csr_ptr = Vec::with_capacity(inst.num_papers() + 1);
        let mut csr_idx = Vec::new();
        let mut csr_val = Vec::new();
        csr_ptr.push(0);
        for p in 0..inst.num_papers() {
            let row = &papers[p * dim..(p + 1) * dim];
            for (t, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    csr_idx.push(t as u32);
                    csr_val.push(w);
                }
            }
            csr_ptr.push(csr_idx.len());
        }
        Self {
            inst,
            scoring,
            seed: 0,
            dim,
            reviewers,
            papers,
            paper_totals,
            paper_inv_totals,
            csr_ptr,
            csr_idx,
            csr_val,
            pair_cache: std::sync::OnceLock::new(),
            auto_candidates: std::sync::OnceLock::new(),
        }
    }

    /// Set the seed consumed by stochastic solvers (SDGA-SRA).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The underlying instance.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// The scoring function every kernel applies.
    pub fn scoring(&self) -> Scoring {
        self.scoring
    }

    /// Seed for stochastic solvers.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Topic dimension `T`.
    pub fn num_topics(&self) -> usize {
        self.dim
    }

    /// Number of papers `P`.
    pub fn num_papers(&self) -> usize {
        self.paper_totals.len()
    }

    /// Number of reviewers `R`.
    pub fn num_reviewers(&self) -> usize {
        // `dim == 0` collapses every flat row to nothing — fall back to the
        // instance's count.
        self.reviewers.len().checked_div(self.dim).unwrap_or(self.inst.num_reviewers())
    }

    /// Reviewer `r`'s expertise row.
    #[inline]
    pub fn reviewer_row(&self, r: usize) -> &[f64] {
        &self.reviewers[r * self.dim..(r + 1) * self.dim]
    }

    /// Paper `p`'s topic row.
    #[inline]
    pub fn paper_row(&self, p: usize) -> &[f64] {
        &self.papers[p * self.dim..(p + 1) * self.dim]
    }

    /// Paper `p`'s normaliser `Σ_t p[t]`.
    #[inline]
    pub fn paper_total(&self, p: usize) -> f64 {
        self.paper_totals[p]
    }

    /// Paper `p`'s `1/total` (0 for a zero paper), the incremental-gain
    /// convention shared with [`RunningGroup`](crate::score::RunningGroup).
    #[inline]
    pub fn paper_inv_total(&self, p: usize) -> f64 {
        self.paper_inv_totals[p]
    }

    /// Paper `p`'s non-zero topics as `(indices, weights)`.
    #[inline]
    pub fn paper_sparse(&self, p: usize) -> (&[u32], &[f64]) {
        let lo = self.csr_ptr[p];
        let hi = self.csr_ptr[p + 1];
        (&self.csr_idx[lo..hi], &self.csr_val[lo..hi])
    }

    /// May kernels use the CSR view under this context's scoring?
    #[inline]
    pub fn sparse(&self) -> bool {
        self.scoring.sparse_safe()
    }

    /// `c(r, p)` — bit-identical to
    /// [`Scoring::pair_score`](crate::score::Scoring::pair_score) on the
    /// boxed vectors (numerator summed in ascending topic order, then one
    /// division by the paper total).
    pub fn pair_score(&self, r: usize, p: usize) -> f64 {
        let total = self.paper_totals[p];
        if total <= 0.0 {
            return 0.0;
        }
        let row = self.reviewer_row(r);
        let mut raw = 0.0;
        if self.sparse() {
            let (idx, val) = self.paper_sparse(p);
            for (&t, &w) in idx.iter().zip(val) {
                raw += self.scoring.topic_contribution(row[t as usize], w);
            }
        } else {
            for (&e, &w) in row.iter().zip(self.paper_row(p)) {
                raw += self.scoring.topic_contribution(e, w);
            }
        }
        raw / total
    }

    /// The dense `P × R` pair-score matrix, built once per context (rows in
    /// parallel when the `rayon` feature is enabled — bit-identical either
    /// way) and cached for every subsequent solver.
    pub fn pair_matrix(&self) -> &PairMatrix {
        self.pair_cache.get_or_init(|| self.build_pair_matrix())
    }

    /// Build the pair matrix unconditionally (no cache) — the kernel behind
    /// [`ScoreContext::pair_matrix`], exposed for benchmarking.
    pub fn build_pair_matrix(&self) -> PairMatrix {
        let num_r = self.num_reviewers();
        let rows = par::map_indexed(self.num_papers(), |p| {
            let mut row = Vec::with_capacity(num_r);
            for r in 0..num_r {
                row.push(self.pair_score(r, p));
            }
            row
        });
        PairMatrix::from_rows(num_r, rows)
    }

    /// The untruncated candidate set (every positive-score reviewer per
    /// paper — the [`PruningPolicy::Auto`] lists), built once per context
    /// and shared by every solver pruning under `Auto`. Always certified.
    ///
    /// [`PruningPolicy::Auto`]: super::candidates::PruningPolicy::Auto
    pub fn auto_candidates(&self) -> &super::candidates::CandidateSet {
        self.auto_candidates.get_or_init(|| super::candidates::CandidateSet::build(self, None))
    }

    /// A single-paper JRA view over this context's flat rows, with the
    /// instance's COI mask for `p`.
    pub fn jra_view(&self, p: usize) -> JraView<'_> {
        let forbidden = (0..self.num_reviewers()).map(|r| self.inst.is_coi(r, p)).collect();
        self.jra_view_with_forbidden(p, forbidden)
    }

    /// A single-paper JRA view with an explicit candidate mask (BRGG feeds
    /// in capacity exhaustion on top of COIs).
    pub fn jra_view_with_forbidden(&self, p: usize, forbidden: Vec<bool>) -> JraView<'_> {
        JraView {
            paper: self.paper_row(p),
            total: self.paper_totals[p],
            inv_total: self.paper_inv_totals[p],
            rows: Rows::Flat { data: &self.reviewers, dim: self.dim, len: self.num_reviewers() },
            forbidden,
            delta_p: self.inst.delta_p(),
            scoring: self.scoring,
        }
    }
}

/// Dense `P × R` pair-score matrix (`c(r, p)` per cell).
#[derive(Debug, Clone)]
pub struct PairMatrix {
    num_reviewers: usize,
    data: Vec<f64>,
}

impl PairMatrix {
    fn from_rows(num_reviewers: usize, rows: Vec<Vec<f64>>) -> Self {
        let mut data = Vec::with_capacity(rows.len() * num_reviewers);
        for row in rows {
            debug_assert_eq!(row.len(), num_reviewers);
            data.extend(row);
        }
        Self { num_reviewers, data }
    }

    /// Build from the legacy boxed-vector scoring path (the reference
    /// implementation the engine path is tested against).
    pub fn from_instance(inst: &Instance, scoring: Scoring) -> Self {
        let num_r = inst.num_reviewers();
        let rows = par::map_indexed(inst.num_papers(), |p| {
            (0..num_r).map(|r| scoring.pair_score(inst.reviewer(r), inst.paper(p))).collect()
        });
        Self::from_rows(num_r, rows)
    }

    /// `c(r, p)`.
    #[inline]
    pub fn get(&self, r: usize, p: usize) -> f64 {
        self.data[p * self.num_reviewers + r]
    }

    /// Paper `p`'s scores over all reviewers.
    #[inline]
    pub fn paper_row(&self, p: usize) -> &[f64] {
        &self.data[p * self.num_reviewers..(p + 1) * self.num_reviewers]
    }

    /// Number of papers.
    pub fn num_papers(&self) -> usize {
        self.data.len().checked_div(self.num_reviewers).unwrap_or(0)
    }

    /// Number of reviewers.
    pub fn num_reviewers(&self) -> usize {
        self.num_reviewers
    }
}

/// Reviewer-row storage behind a [`JraView`]: boxed legacy vectors or the
/// engine's flat matrix. One enum dispatch per row access keeps the exact
/// JRA machinery (BBA, greedy seeding) generic over both without
/// monomorphisation or trait objects in the hot loop.
#[derive(Debug, Clone, Copy)]
enum Rows<'a> {
    Boxed(&'a [TopicVector]),
    Flat { data: &'a [f64], dim: usize, len: usize },
}

/// A single-paper reviewer-selection view: the common substrate the exact
/// JRA solvers run on, whether fed from a legacy
/// [`JraProblem`](crate::jra::JraProblem) or a [`ScoreContext`].
#[derive(Debug, Clone)]
pub struct JraView<'a> {
    /// The paper's topic weights.
    pub paper: &'a [f64],
    /// `Σ_t paper[t]`.
    pub total: f64,
    /// `1/total`, or 0 for a zero paper.
    pub inv_total: f64,
    rows: Rows<'a>,
    /// Conflicted / unavailable candidates.
    pub forbidden: Vec<bool>,
    /// Group size `δp`.
    pub delta_p: usize,
    /// Scoring function.
    pub scoring: Scoring,
}

impl<'a> JraView<'a> {
    /// View over boxed legacy vectors (the reference path).
    pub fn from_boxed(
        paper: &'a TopicVector,
        reviewers: &'a [TopicVector],
        forbidden: Vec<bool>,
        delta_p: usize,
        scoring: Scoring,
    ) -> Self {
        let total = paper.total();
        Self {
            paper: paper.as_slice(),
            total,
            inv_total: if total > 0.0 { 1.0 / total } else { 0.0 },
            rows: Rows::Boxed(reviewers),
            forbidden,
            delta_p,
            scoring,
        }
    }

    /// Candidate count (including forbidden entries).
    #[inline]
    pub fn num_reviewers(&self) -> usize {
        match self.rows {
            Rows::Boxed(v) => v.len(),
            Rows::Flat { len, .. } => len,
        }
    }

    /// Reviewer `r`'s expertise row.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        match self.rows {
            Rows::Boxed(v) => v[r].as_slice(),
            Rows::Flat { data, dim, .. } => &data[r * dim..(r + 1) * dim],
        }
    }

    /// Number of non-forbidden candidates.
    pub fn num_feasible(&self) -> usize {
        self.forbidden.iter().filter(|f| !**f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;

    #[test]
    fn flat_rows_match_boxed_vectors() {
        let inst = random_instance(6, 5, 4, 2, 9);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        for r in 0..5 {
            assert_eq!(ctx.reviewer_row(r), inst.reviewer(r).as_slice());
        }
        for p in 0..6 {
            assert_eq!(ctx.paper_row(p), inst.paper(p).as_slice());
            assert_eq!(ctx.paper_total(p), inst.paper(p).total());
            let (idx, val) = ctx.paper_sparse(p);
            for (&t, &w) in idx.iter().zip(val) {
                assert_eq!(inst.paper(p)[t as usize], w);
            }
        }
    }

    #[test]
    fn pair_scores_bit_identical_for_all_scorings() {
        let inst = random_instance(7, 6, 5, 2, 3);
        for scoring in Scoring::ALL {
            let ctx = ScoreContext::new(&inst, scoring);
            let m = ctx.pair_matrix();
            let legacy = PairMatrix::from_instance(&inst, scoring);
            for p in 0..7 {
                for r in 0..6 {
                    let want = scoring.pair_score(inst.reviewer(r), inst.paper(p));
                    // Bit-identical, not approximately equal.
                    assert_eq!(ctx.pair_score(r, p).to_bits(), want.to_bits());
                    assert_eq!(m.get(r, p).to_bits(), want.to_bits());
                    assert_eq!(legacy.get(r, p).to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn sparse_view_skips_zero_topics() {
        use crate::topic::TopicVector;
        let papers = vec![TopicVector::from_sparse(6, &[(1, 0.7), (4, 0.3)])];
        let reviewers = vec![
            TopicVector::new(vec![0.2, 0.3, 0.1, 0.1, 0.2, 0.1]),
            TopicVector::new(vec![0.0, 0.9, 0.0, 0.0, 0.1, 0.0]),
        ];
        let inst = Instance::new(papers, reviewers, 1, 1).unwrap();
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let (idx, _) = ctx.paper_sparse(0);
        assert_eq!(idx, &[1, 4]);
        for r in 0..2 {
            let want = Scoring::WeightedCoverage.pair_score(inst.reviewer(r), inst.paper(0));
            assert_eq!(ctx.pair_score(r, 0).to_bits(), want.to_bits());
        }
        // Reviewer coverage is not sparse-safe and must use the dense path.
        let dense_ctx = ScoreContext::new(&inst, Scoring::ReviewerCoverage);
        assert!(!dense_ctx.sparse());
        for r in 0..2 {
            let want = Scoring::ReviewerCoverage.pair_score(inst.reviewer(r), inst.paper(0));
            assert_eq!(dense_ctx.pair_score(r, 0).to_bits(), want.to_bits());
        }
    }
}
