//! The `wgrap serve` front-end: newline-delimited JSON over stdin/stdout or
//! `std::net` TCP.
//!
//! One request per line, one response line per request, in request order —
//! offline-friendly (no TLS, no HTTP, no registry dependencies), trivially
//! scriptable (`wgrap serve inst.wgrap < requests.ndjson`), and
//! deterministic: the same request stream against the same instance
//! produces byte-identical responses, which the golden-file CI smoke tests
//! rely on (one golden per protocol version, shared by rayon on/off).
//!
//! Every op is a thin JSON skin over the typed
//! [`api`](crate::api) layer: requests parse into a
//! [`SolveRequest`], plan and execute through [`Service`](crate::api::Service), and the
//! [`Outcome`](crate::api::Outcome) renders in the wire shape of the requested protocol
//! version. The server owns **no** solving or defaulting logic of its own.
//!
//! # Protocol versions
//!
//! A request opts into version 2 with `"v":2`; requests without a `"v"`
//! field (or with `"v":1`) speak version 1, whose responses are
//! byte-identical to the pre-`api` server — v1 sessions replay exactly
//! against their existing goldens.
//!
//! ```text
//! v1 (implicit):
//! {"op":"jra","paper":[0.2,0.8],"delta_p":2,"top_k":3,"exclude":[4]}
//! {"op":"jra","paper_id":0}            |  {"op":"jra","paper_name":"p-17"}
//! {"op":"batch","queries":[{...},...]} -- many jra queries, one snapshot
//! {"op":"update","updates":[{"kind":"add_reviewer","name":"dave","expertise":[...]},
//!                           {"kind":"add_paper","topics":[...],"coi":[0]},
//!                           {"kind":"retire_reviewer","reviewer":3},
//!                           {"kind":"patch_scores","reviewer":0,"expertise":[...]}]}
//! {"op":"assign","method":"sdga-sra"}  -- full CRA at the admitted epoch
//! {"op":"stats"}
//!
//! v2 (same ops and fields, plus):
//! {"v":2,"op":"jra","paper_id":0}      -- response carries "cache" and "key"
//! {"v":2,"op":"batch","queries":[{"paper_id":0,"pruning":"exact"},...]}
//!                                      -- per-entry pruning override + per-entry
//!                                         "cache"/"key" in the response
//! {"v":2,"op":"stats"}                 -- adds result-cache counters and the
//!                                         store's build-vs-publish batch counts
//! {"v":2,"op":"stats","timings":true}  -- adds wall-clock build/publish timings
//!                                         (non-deterministic; excluded from goldens)
//! ```
//!
//! v2 responses add `"cache"` (`"hit"`/`"miss"` — a hit is **bit-identical**
//! to the cold solve by the cache contract), the request's canonical
//! `"key"`, and `"loss_bound"` under `TopK` pruning. Wall-clock timings from
//! [`Diagnostics`](crate::api::Diagnostics) are deliberately **not** rendered on solve responses:
//! responses stay byte-deterministic (library consumers read
//! [`Outcome::diag`](crate::api::Outcome) instead; `stats` exposes timings only
//! on request).
//!
//! # Concurrency
//!
//! Connections share one [`Frontend`] over the internally synchronized
//! [`Service`](crate::api::Service). Queries and CRA runs admit at an epoch (an
//! `Arc<Snapshot>` clone) and solve lock-free; updates build copy-on-write
//! off the read path and publish with a bare `Arc` swap
//! ([`VersionedStore`](crate::store::VersionedStore)'s build/publish
//! split), so a `jra` admission on one TCP connection proceeds even while
//! an update batch is mid-build on another. The front-end adds admission
//! control and epoch-coalescing on top (see [`crate::frontend`]): a
//! saturated server answers `{"ok":false,"busy":true,...}` instead of
//! queueing without bound, and concurrent single-query `jra` requests at
//! one epoch solve as a single [`JraBatch`](crate::batch::JraBatch) —
//! with byte-identical responses, by the batch contract.

use crate::api::{Answer, CacheStatus, JraAnswer, JraSpec, PaperRef, SolveRequest};
use crate::frontend::{Frontend, JraOutcome};
use crate::json::{self, Json};
use crate::store::Update;
use crate::telemetry::trace::FinishedTrace;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::{mpsc, Arc};
use wgrap_core::engine::{spec, PruningPolicy};
use wgrap_core::jra::JraResult;
use wgrap_core::topic::TopicVector;

/// Run a request/response session: one JSON request per input line, one
/// JSON response per line on `out`, until EOF. Malformed lines produce an
/// `{"ok":false,...}` response and the session continues.
pub fn serve_connection<R: BufRead, W: Write>(
    frontend: &Frontend,
    input: R,
    mut out: W,
) -> io::Result<()> {
    frontend.note_connection();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(frontend, &line);
        writeln!(out, "{response}")?;
        out.flush()?;
    }
    Ok(())
}

/// Serve a single session over stdin/stdout (the piping mode).
pub fn serve_stdio(frontend: &Frontend) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(frontend, stdin.lock(), stdout.lock())
}

/// Accept TCP connections forever, one thread per connection, all sharing
/// the front-end (updates from any connection are visible to all at the
/// next epoch; admission bounds apply across all connections). The
/// listener is bound by the caller so tests can pick port 0.
pub fn serve_tcp(listener: TcpListener, frontend: Arc<Frontend>) -> io::Result<()> {
    loop {
        let (socket, _) = listener.accept()?;
        let frontend = Arc::clone(&frontend);
        std::thread::spawn(move || {
            let reader = BufReader::new(match socket.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            });
            let _ = serve_connection(&frontend, reader, socket);
        });
    }
}

/// Serve the telemetry registry as Prometheus text exposition over bare
/// HTTP/1.1 (the CLI's `--metrics-listen` endpoint). Hand-rolled in the
/// same no-dependency spirit as [`crate::json`]: one thread per request,
/// read the request line, drain the headers, answer `GET /metrics` (or
/// `GET /`) with [`MetricsSnapshot::to_prometheus`](crate::telemetry::MetricsSnapshot::to_prometheus)
/// and anything else with a 404, then close. Loops accepting forever.
pub fn serve_metrics(
    listener: TcpListener,
    telemetry: Arc<crate::telemetry::Telemetry>,
) -> io::Result<()> {
    loop {
        let (socket, _) = listener.accept()?;
        let telemetry = Arc::clone(&telemetry);
        std::thread::spawn(move || {
            let _ = serve_metrics_once(socket, &telemetry);
        });
    }
}

fn serve_metrics_once(
    mut socket: std::net::TcpStream,
    telemetry: &crate::telemetry::Telemetry,
) -> io::Result<()> {
    let mut reader = BufReader::new(socket.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers up to the blank line; nothing in them matters here.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("");
    let (status, body) = if request_line.starts_with("GET ") && (path == "/metrics" || path == "/")
    {
        ("200 OK", telemetry.snapshot().to_prometheus())
    } else {
        ("404 Not Found", "not found\n".to_string())
    };
    write!(
        socket,
        "HTTP/1.1 {status}\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )?;
    socket.flush()
}

/// One message to a multi-session connection thread.
enum MultiMsg {
    /// A request line to handle.
    Line(String),
    /// A barrier marker: drop the sender once every earlier line on this
    /// connection has been handled (channel FIFO makes that ordering
    /// free).
    Sync(mpsc::Sender<()>),
}

/// The deterministic multi-session harness behind `wgrap serve --multi`:
/// replay an interleaved N-client session from one input stream, with a
/// real thread per client hitting the shared front-end concurrently.
///
/// Input format, one line each:
///
/// - `<cid> <json-request>` — dispatch the request on connection `cid`
///   (any whitespace-free token; a thread is spawned lazily on first
///   use). Lines for *different* connections genuinely race: they are
///   forwarded immediately and handled concurrently.
/// - `#sync` — a global barrier: wait until every connection has handled
///   all its earlier lines. Fixtures use this to isolate updates, so the
///   epoch every phase observes is deterministic.
/// - `#...` — comment, ignored. Blank lines are ignored.
///
/// Output: after EOF, each connection's responses are written in order as
/// `<cid>\t<response>` lines, grouped by connection in first-seen order —
/// deterministic regardless of thread scheduling, because each
/// connection's responses depend only on its own request order and the
/// barrier-delimited epoch (coalescing never changes response bytes).
pub fn serve_multi<R: BufRead, W: Write>(
    frontend: &Arc<Frontend>,
    input: R,
    mut out: W,
) -> io::Result<()> {
    type Conn = (mpsc::Sender<MultiMsg>, std::thread::JoinHandle<Vec<String>>);
    let mut order: Vec<String> = Vec::new();
    let mut conns: HashMap<String, Conn> = HashMap::new();
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if trimmed == "#sync" {
            let (ack_tx, ack_rx) = mpsc::channel();
            for cid in &order {
                let _ = conns[cid].0.send(MultiMsg::Sync(ack_tx.clone()));
            }
            drop(ack_tx);
            // Drained when every connection dropped its clone.
            while ack_rx.recv().is_ok() {}
            continue;
        }
        if trimmed.starts_with('#') {
            continue;
        }
        let Some((cid, payload)) = trimmed.split_once(char::is_whitespace) else {
            writeln!(out, "#error\tline needs '<cid> <request>': {trimmed}")?;
            continue;
        };
        let payload = payload.trim().to_string();
        let tx = match conns.get(cid) {
            Some((tx, _)) => tx.clone(),
            None => {
                let (tx, rx) = mpsc::channel::<MultiMsg>();
                let frontend = Arc::clone(frontend);
                let handle = std::thread::spawn(move || {
                    frontend.note_connection();
                    let mut responses = Vec::new();
                    for msg in rx {
                        match msg {
                            MultiMsg::Line(l) => {
                                responses.push(handle_line(&frontend, &l).to_string())
                            }
                            MultiMsg::Sync(ack) => drop(ack),
                        }
                    }
                    responses
                });
                order.push(cid.to_string());
                conns.insert(cid.to_string(), (tx.clone(), handle));
                tx
            }
        };
        let _ = tx.send(MultiMsg::Line(payload));
    }
    for cid in &order {
        let (tx, handle) = conns.remove(cid).expect("order tracks conns");
        drop(tx);
        let responses =
            handle.join().map_err(|_| io::Error::other("connection thread panicked"))?;
        for r in responses {
            writeln!(out, "{cid}\t{r}")?;
        }
    }
    out.flush()
}

/// The protocol version a request speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Protocol {
    V1,
    V2,
}

/// Handle one request line and render the response (never panics on bad
/// input — every error becomes an `{"ok":false,...}` response).
pub fn handle_line(frontend: &Frontend, line: &str) -> Json {
    let request = match json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(&format!("bad JSON: {e}")),
    };
    let proto = match request.get("v") {
        None => Protocol::V1,
        Some(v) => match v.as_usize() {
            Some(1) => Protocol::V1,
            Some(2) => Protocol::V2,
            _ => return error_response("unsupported protocol version (valid: 1, 2)"),
        },
    };
    let Some(op) = request.get("op").and_then(Json::as_str) else {
        return versioned_error(proto, "missing \"op\"");
    };
    frontend.count_request(op);
    let result = match op {
        "jra" => handle_jra_single(frontend, &request, proto),
        "batch" => handle_batch(frontend, &request, proto),
        "update" => handle_update(frontend, &request, proto),
        "assign" => handle_assign(frontend, &request, proto),
        "stats" => handle_stats(frontend, &request, proto),
        "metrics" => handle_metrics(frontend, &request, proto),
        other => Err(format!("unknown op '{other}'")),
    };
    match result {
        Ok(v) => v,
        Err(e) => versioned_error(proto, &e),
    }
}

/// The opt-in `"trace":true` member (v2 only): the request's span tree,
/// structure-only unless `"timings":true` is also set — golden sessions
/// can assert span names/nesting/counts without touching wall clocks.
fn trace_member(
    request: &Json,
    proto: Protocol,
    trace: Option<&FinishedTrace>,
) -> Option<(&'static str, Json)> {
    if proto != Protocol::V2 || request.get("trace").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    let timings = request.get("timings").and_then(Json::as_bool) == Some(true);
    trace.map(|t| ("trace", t.to_json(timings)))
}

fn error_response(message: &str) -> Json {
    Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(message.into()))])
}

fn versioned_error(proto: Protocol, message: &str) -> Json {
    match proto {
        Protocol::V1 => error_response(message),
        Protocol::V2 => Json::obj([
            ("ok", Json::Bool(false)),
            ("v", Json::Num(2.0)),
            ("error", Json::Str(message.into())),
        ]),
    }
}

/// The structured admission-control rejection: `"busy":true` marks it as
/// retryable (the request was never queued or solved), distinct from the
/// plain `"error"` shape that means the request itself was bad.
fn busy_response(proto: Protocol) -> Json {
    let mut members = vec![("ok", Json::Bool(false))];
    if proto == Protocol::V2 {
        members.push(("v", Json::Num(2.0)));
    }
    members.push(("busy", Json::Bool(true)));
    members.push(("error", Json::Str("busy: server at capacity, retry later".into())));
    Json::obj(members)
}

fn request_pruning(request: &Json) -> Result<Option<PruningPolicy>, String> {
    match request.get("pruning") {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .ok_or_else(|| "\"pruning\" must be a string".to_string())?
            .parse::<PruningPolicy>()
            .map(Some),
    }
}

fn parse_topics(value: &Json, what: &str) -> Result<TopicVector, String> {
    let arr = value.as_arr().ok_or_else(|| format!("\"{what}\" must be an array of numbers"))?;
    let mut weights = Vec::with_capacity(arr.len());
    for v in arr {
        let n = v.as_f64().ok_or_else(|| format!("\"{what}\" must be an array of numbers"))?;
        if !n.is_finite() || n < 0.0 {
            return Err(format!("\"{what}\" weights must be finite and >= 0"));
        }
        weights.push(n);
    }
    Ok(TopicVector::new(weights))
}

fn parse_ids(value: Option<&Json>, what: &str) -> Result<Vec<u32>, String> {
    match value {
        None => Ok(Vec::new()),
        Some(v) => v
            .as_arr()
            .ok_or_else(|| format!("\"{what}\" must be an array of ids"))?
            .iter()
            .map(|x| {
                x.as_usize()
                    .map(|n| n as u32)
                    .ok_or_else(|| format!("\"{what}\" must be an array of ids"))
            })
            .collect(),
    }
}

/// Parse one JRA query's fields into a typed [`JraSpec`]. Purely
/// structural — paper *names* resolve later, during planning, so an
/// unknown name fails its own entry, not the parse.
fn parse_jra_spec(request: &Json, pruning: Option<PruningPolicy>) -> Result<JraSpec, String> {
    let paper = match (request.get("paper"), request.get("paper_id"), request.get("paper_name")) {
        (Some(topics), None, None) => PaperRef::Adhoc(parse_topics(topics, "paper")?),
        (None, Some(id), None) => {
            PaperRef::Id(id.as_usize().ok_or("\"paper_id\" must be an integer")?)
        }
        (None, None, Some(name)) => {
            PaperRef::Name(name.as_str().ok_or("\"paper_name\" must be a string")?.to_string())
        }
        _ => return Err("give exactly one of \"paper\", \"paper_id\", \"paper_name\"".into()),
    };
    let delta_p = match request.get("delta_p") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("\"delta_p\" must be a positive integer")?),
    };
    let top_k = match request.get("top_k") {
        None => 1,
        Some(v) => v.as_usize().ok_or("\"top_k\" must be a positive integer")?,
    };
    // An entry-level "pruning" overrides the request-level override.
    let pruning = request_pruning(request)?.or(pruning);
    Ok(JraSpec {
        paper,
        delta_p,
        top_k,
        exclude: parse_ids(request.get("exclude"), "exclude")?,
        pruning,
    })
}

fn render_results(names: &dyn Fn(usize) -> String, results: &[JraResult]) -> Json {
    Json::Arr(
        results
            .iter()
            .map(|res| {
                Json::obj([
                    ("group", Json::nums(res.group.iter().map(|&r| r as f64))),
                    (
                        "reviewers",
                        Json::Arr(res.group.iter().map(|&r| Json::Str(names(r))).collect()),
                    ),
                    ("score", Json::Num(res.score)),
                    ("nodes", Json::Num(res.nodes as f64)),
                ])
            })
            .collect(),
    )
}

/// The v2 diagnostic members shared by solve responses: `"cache"`, the
/// canonical `"key"`, and (under `TopK`) `"loss_bound"`.
fn v2_diag_members(
    cache: CacheStatus,
    key: Option<&crate::api::RequestKey>,
    loss_bound: Option<f64>,
) -> Vec<(&'static str, Json)> {
    let mut members = vec![("cache", Json::Str(cache.label().into()))];
    if let Some(key) = key {
        members.push(("key", Json::Str(key.to_string())));
    }
    if let Some(bound) = loss_bound {
        members.push(("loss_bound", Json::Num(bound)));
    }
    members
}

/// A single `jra`: routed through the front-end coalescer, so concurrent
/// requests at one epoch solve as one batch. Response bytes are identical
/// to the direct path — the batch contract guarantees it.
fn handle_jra_single(frontend: &Frontend, request: &Json, proto: Protocol) -> Result<Json, String> {
    let pruning = request_pruning(request)?;
    let spec = parse_jra_spec(request, pruning)?;
    let (snapshot, answer, loss_bound, trace) = match frontend.jra(&spec) {
        JraOutcome::Busy => return Ok(busy_response(proto)),
        JraOutcome::Done { snapshot, answer, loss_bound, trace } => {
            (snapshot, answer, loss_bound, trace)
        }
    };
    let answer = answer?;
    let names = |r: usize| snapshot.instance().reviewer_name(r);
    let mut members = vec![("ok", Json::Bool(true))];
    if proto == Protocol::V2 {
        members.push(("v", Json::Num(2.0)));
    }
    members.push(("op", Json::Str("jra".into())));
    members.push(("epoch", Json::Num(snapshot.epoch() as f64)));
    if proto == Protocol::V2 {
        members.extend(v2_diag_members(answer.cache, Some(&answer.key), loss_bound));
    }
    members.push(("results", render_results(&names, &answer.results)));
    members.extend(trace_member(request, proto, Some(&trace)));
    Ok(Json::obj(members))
}

/// An explicit `batch`: already a coalesced unit, so it skips the
/// auto-batcher and takes one direct solve slot (admission still applies —
/// a saturated server answers `"busy"`).
fn handle_batch(frontend: &Frontend, request: &Json, proto: Protocol) -> Result<Json, String> {
    let pruning = request_pruning(request)?;
    // Per-entry failure independence holds at parse time too: a malformed
    // batch entry gets its own error entry while its neighbours still run.
    // `slots` maps each positional entry to its parsed spec or parse error.
    let mut specs: Vec<JraSpec> = Vec::new();
    let mut slots: Vec<Result<usize, String>> = Vec::new();
    let queries =
        request.get("queries").and_then(Json::as_arr).ok_or("\"queries\" must be an array")?;
    for q in queries {
        match parse_jra_spec(q, pruning) {
            Ok(spec) => {
                slots.push(Ok(specs.len()));
                specs.push(spec);
            }
            Err(e) => slots.push(Err(e)),
        }
    }

    let Some(_permit) = frontend.permit() else {
        return Ok(busy_response(proto));
    };
    let service = frontend.service();
    let plan = service.plan(&SolveRequest::JraBatch(specs));
    let snapshot = Arc::clone(&plan.snapshot);
    let outcome = service.execute_plan(plan).map_err(|e| e.to_string())?;
    let Answer::Jra(answers) = &outcome.answer else { unreachable!("jra request, jra answer") };
    let names = |r: usize| snapshot.instance().reviewer_name(r);

    let entry = |slot: &Result<usize, String>| -> Result<&JraAnswer, String> {
        match slot {
            Ok(i) => answers[*i].as_ref().map_err(Clone::clone),
            Err(e) => Err(e.clone()),
        }
    };
    let results: Vec<Json> = slots
        .iter()
        .map(|slot| match entry(slot) {
            Err(e) => match proto {
                Protocol::V1 => error_response(&e),
                Protocol::V2 => Json::obj([("ok", Json::Bool(false)), ("error", Json::Str(e))]),
            },
            Ok(answer) => {
                let mut members = vec![("ok", Json::Bool(true))];
                if proto == Protocol::V2 {
                    members.extend(v2_diag_members(answer.cache, Some(&answer.key), None));
                }
                members.push(("results", render_results(&names, &answer.results)));
                Json::obj(members)
            }
        })
        .collect();
    let mut members = vec![("ok", Json::Bool(true))];
    if proto == Protocol::V2 {
        members.push(("v", Json::Num(2.0)));
    }
    members.push(("op", Json::Str("batch".into())));
    members.push(("epoch", Json::Num(snapshot.epoch() as f64)));
    if proto == Protocol::V2 {
        members.extend(v2_diag_members(
            outcome.diag.cache,
            outcome.diag.key.as_ref(),
            outcome.diag.loss_bound,
        ));
    }
    members.push(("results", Json::Arr(results)));
    members.extend(trace_member(request, proto, outcome.trace.as_deref()));
    Ok(Json::obj(members))
}

fn parse_update(value: &Json) -> Result<Update, String> {
    let kind = value.get("kind").and_then(Json::as_str).ok_or("update needs a \"kind\"")?;
    let name = match value.get("name") {
        None => None,
        Some(v) => Some(v.as_str().ok_or("\"name\" must be a string")?.to_string()),
    };
    match kind {
        "add_paper" => Ok(Update::AddPaper {
            name,
            topics: parse_topics(
                value.get("topics").ok_or("add_paper needs \"topics\"")?,
                "topics",
            )?,
            coi: parse_ids(value.get("coi"), "coi")?,
        }),
        "add_reviewer" => Ok(Update::AddReviewer {
            name,
            expertise: parse_topics(
                value.get("expertise").ok_or("add_reviewer needs \"expertise\"")?,
                "expertise",
            )?,
        }),
        "retire_reviewer" => Ok(Update::RetireReviewer {
            reviewer: value
                .get("reviewer")
                .and_then(Json::as_usize)
                .ok_or("retire_reviewer needs a \"reviewer\" id")? as u32,
        }),
        "patch_scores" => Ok(Update::PatchScores {
            reviewer: value
                .get("reviewer")
                .and_then(Json::as_usize)
                .ok_or("patch_scores needs a \"reviewer\" id")? as u32,
            expertise: parse_topics(
                value.get("expertise").ok_or("patch_scores needs \"expertise\"")?,
                "expertise",
            )?,
        }),
        other => Err(format!("unknown update kind '{other}'")),
    }
}

/// `update` bypasses admission entirely: the write path must never queue
/// behind reads (the store's build/publish split keeps it cheap), and a
/// saturated server still has to accept updates.
fn handle_update(frontend: &Frontend, request: &Json, proto: Protocol) -> Result<Json, String> {
    let items =
        request.get("updates").and_then(Json::as_arr).ok_or("\"updates\" must be an array")?;
    let updates: Vec<Update> = items.iter().map(parse_update).collect::<Result<_, _>>()?;
    // Group-commit bracket: concurrent update requests open overlapping
    // fsync waves, so under `--fsync batch` one fsync covers the whole
    // admission burst instead of running per batch. No-op without
    // durability or under other policies.
    let wave = frontend.service().store().durability().map(|d| d.begin_wave());
    let outcome =
        frontend.service().execute(&SolveRequest::Update(updates)).map_err(|e| e.to_string())?;
    drop(wave);
    let Answer::Update(answer) = &outcome.answer else { unreachable!("update answer") };
    let mut members = vec![("ok", Json::Bool(true))];
    if proto == Protocol::V2 {
        members.push(("v", Json::Num(2.0)));
    }
    members.extend([
        ("op", Json::Str("update".into())),
        ("epoch", Json::Num(outcome.diag.epoch as f64)),
        ("applied", Json::Num(answer.applied as f64)),
        ("papers", Json::Num(answer.papers as f64)),
        ("reviewers", Json::Num(answer.reviewers as f64)),
    ]);
    members.extend(trace_member(request, proto, outcome.trace.as_deref()));
    Ok(Json::obj(members))
}

/// A full CRA `assign` is the heavyweight consumer: it takes one direct
/// solve slot under admission control, like an explicit `batch`.
fn handle_assign(frontend: &Frontend, request: &Json, proto: Protocol) -> Result<Json, String> {
    let pruning = request_pruning(request)?;
    let method = match request.get("method") {
        None => None,
        Some(v) => {
            let label = v.as_str().ok_or("\"method\" must be a string")?;
            Some(spec::method_by_label(label).map_err(|e| e.to_string())?)
        }
    };
    let Some(_permit) = frontend.permit() else {
        return Ok(busy_response(proto));
    };
    let outcome = frontend
        .service()
        .execute(&SolveRequest::Cra { method, pruning, seed: None })
        .map_err(|e| e.to_string())?;
    let Answer::Cra(answer) = &outcome.answer else { unreachable!("cra answer") };
    let groups: Vec<Json> = (0..answer.assignment.num_papers())
        .map(|p| Json::nums(answer.assignment.group(p).iter().map(|&r| r as f64)))
        .collect();
    let mut members = vec![("ok", Json::Bool(true))];
    if proto == Protocol::V2 {
        members.push(("v", Json::Num(2.0)));
    }
    members.extend([
        ("op", Json::Str("assign".into())),
        ("epoch", Json::Num(outcome.diag.epoch as f64)),
    ]);
    if proto == Protocol::V2 {
        members.extend(v2_diag_members(
            outcome.diag.cache,
            outcome.diag.key.as_ref(),
            outcome.diag.loss_bound,
        ));
    }
    members.extend([
        ("method", Json::Str(answer.method.label().into())),
        ("coverage", Json::Num(answer.coverage)),
        ("groups", Json::Arr(groups)),
    ]);
    members.extend(trace_member(request, proto, outcome.trace.as_deref()));
    Ok(Json::obj(members))
}

/// `stats` bypasses admission: observability must work precisely when the
/// server is saturated and everything else answers `"busy"`.
fn handle_stats(frontend: &Frontend, request: &Json, proto: Protocol) -> Result<Json, String> {
    let outcome = frontend.service().execute(&SolveRequest::Stats).map_err(|e| e.to_string())?;
    let Answer::Stats(stats) = &outcome.answer else { unreachable!("stats answer") };
    let mut members = vec![("ok", Json::Bool(true))];
    if proto == Protocol::V2 {
        members.push(("v", Json::Num(2.0)));
    }
    members.extend([
        ("op", Json::Str("stats".into())),
        ("epoch", Json::Num(outcome.diag.epoch as f64)),
        ("papers", Json::Num(stats.papers as f64)),
        ("reviewers", Json::Num(stats.reviewers as f64)),
        ("topics", Json::Num(stats.topics as f64)),
        ("delta_p", Json::Num(stats.delta_p as f64)),
        ("delta_r", Json::Num(stats.delta_r as f64)),
        ("scoring", Json::Str(stats.scoring.label().into())),
    ]);
    if let Some(s) = stats.support {
        members.push((
            "candidate_support",
            Json::obj([
                ("min", Json::Num(s.min as f64)),
                ("p25", Json::Num(s.p25 as f64)),
                ("median", Json::Num(s.median as f64)),
                ("p75", Json::Num(s.p75 as f64)),
                ("max", Json::Num(s.max as f64)),
            ]),
        ));
    }
    if proto == Protocol::V2 {
        members.push((
            "cache",
            Json::obj([
                ("size", Json::Num(stats.cache.size as f64)),
                ("cap", Json::Num(stats.cache.capacity as f64)),
                ("hits", Json::Num(stats.cache.hits as f64)),
                ("misses", Json::Num(stats.cache.misses as f64)),
                ("evictions", Json::Num(stats.cache.evictions as f64)),
            ]),
        ));
        // Front-end counters: deterministic for a sequential session
        // (each single jra drains as its own batch of 1); golden
        // multi-client sessions read v1 stats instead, since batch
        // grouping under real concurrency depends on arrival order.
        let front = frontend.counters();
        members.push((
            "frontend",
            Json::obj([
                ("connections", Json::Num(front.connections as f64)),
                ("queued", Json::Num(front.queued as f64)),
                ("rejected", Json::Num(front.rejected as f64)),
                ("batches", Json::Num(front.batches as f64)),
                ("batched_requests", Json::Num(front.batched_requests as f64)),
                ("max_batch", Json::Num(front.max_batch as f64)),
            ]),
        ));
        // Page counters and snapshot bytes are deterministic (derived from
        // update contents, never wall clocks), so unlike `timings` they are
        // safe in golden sessions and emitted unconditionally.
        members.push((
            "store",
            Json::obj([
                ("batches", Json::Num(stats.store.batches as f64)),
                ("updates", Json::Num(stats.store.updates as f64)),
                ("pages_cloned", Json::Num(stats.store.total_pages_cloned as f64)),
                ("pages_shared", Json::Num(stats.store.total_pages_shared as f64)),
                ("last_pages_cloned", Json::Num(stats.store.last_pages_cloned as f64)),
                ("last_pages_shared", Json::Num(stats.store.last_pages_shared as f64)),
                ("snapshot_bytes", Json::Num(stats.store.last_snapshot_bytes as f64)),
                ("peak_snapshot_bytes", Json::Num(stats.store.peak_snapshot_bytes as f64)),
            ]),
        ));
        // Durability counters (bytes, frames, epochs — never wall clocks)
        // are deterministic for a fixed session, but the section only
        // exists when a `--data-dir` is configured: durability-off sessions
        // stay byte-identical to their pre-durability goldens.
        if let Some(d) = &stats.durability {
            members.push((
                "durability",
                Json::obj([
                    ("wal_bytes", Json::Num(d.wal_bytes as f64)),
                    ("wal_frames", Json::Num(d.wal_frames as f64)),
                    ("fsyncs", Json::Num(d.fsyncs as f64)),
                    ("last_fsync_epoch", Json::Num(d.last_fsync_epoch as f64)),
                    ("checkpoints", Json::Num(d.checkpoints as f64)),
                    ("last_checkpoint_epoch", Json::Num(d.last_checkpoint_epoch as f64)),
                    ("fsync_policy", Json::Str(d.fsync_policy.label().into())),
                    ("checkpoint_every", Json::Num(d.checkpoint_every as f64)),
                    (
                        "recovered",
                        Json::obj([
                            ("epochs", Json::Num(d.recovered.epochs as f64)),
                            ("frames_replayed", Json::Num(d.recovered.frames_replayed as f64)),
                            (
                                "truncated_tail_bytes",
                                Json::Num(d.recovered.truncated_tail_bytes as f64),
                            ),
                        ]),
                    ),
                ]),
            ));
        }
        // Wall-clock timings are non-deterministic, so they are opt-in:
        // golden sessions never request them.
        if request.get("timings").and_then(Json::as_bool) == Some(true) {
            members.push((
                "timings",
                Json::obj([
                    ("last_build_us", Json::Num(stats.store.last_build.as_micros() as f64)),
                    ("total_build_us", Json::Num(stats.store.total_build.as_micros() as f64)),
                    ("last_publish_us", Json::Num(stats.store.last_publish.as_micros() as f64)),
                    ("total_publish_us", Json::Num(stats.store.total_publish.as_micros() as f64)),
                ]),
            ));
        }
    }
    members.extend(trace_member(request, proto, outcome.trace.as_deref()));
    Ok(Json::obj(members))
}

/// The v2 `metrics` op: a full registry snapshot. The default shape is
/// deterministic for a fixed session (counters, gauges, histogram
/// *counts* — golden-tested, rayon on or off); `"timings":true` adds
/// wall-clock quantiles and `"slow":true` the slow-query log, both
/// non-deterministic and never golden-diffed. Bypasses admission like
/// `stats`: observability must work on a saturated server.
fn handle_metrics(frontend: &Frontend, request: &Json, proto: Protocol) -> Result<Json, String> {
    if proto != Protocol::V2 {
        return Err("\"metrics\" requires protocol v2 (send \"v\":2)".into());
    }
    let timings = request.get("timings").and_then(Json::as_bool) == Some(true);
    let telemetry = frontend.service().telemetry();
    let mut obj = vec![
        ("ok".to_string(), Json::Bool(true)),
        ("v".to_string(), Json::Num(2.0)),
        ("op".to_string(), Json::Str("metrics".into())),
    ];
    let Json::Obj(body) = telemetry.snapshot().to_json(timings) else {
        unreachable!("snapshot renders an object")
    };
    obj.extend(body);
    if request.get("slow").and_then(Json::as_bool) == Some(true) {
        let slow = telemetry.traces().slow();
        obj.push((
            "slow".to_string(),
            Json::Arr(slow.iter().map(|t| t.to_json(timings)).collect()),
        ));
    }
    Ok(Json::Obj(obj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wgrap_core::prelude::Scoring;

    fn test_instance() -> wgrap_core::prelude::Instance {
        let text = "\
topics 3
delta_p 2
delta_r 3
reviewer alice 0.7 0.2 0.1
reviewer bob   0.1 0.8 0.1
reviewer carol 0.2 0.2 0.6
paper p-17 0.5 0.4 0.1
paper p-23 0.0 0.3 0.7
coi alice p-17
";
        wgrap_core::io::parse_instance(text).unwrap()
    }

    fn test_service() -> Frontend {
        let service = crate::api::Service::new(test_instance(), Scoring::WeightedCoverage, 42);
        Frontend::with_defaults(Arc::new(service))
    }

    fn respond(frontend: &Frontend, line: &str) -> Json {
        handle_line(frontend, line)
    }

    fn ok(v: &Json) -> bool {
        v.get("ok").and_then(Json::as_bool) == Some(true)
    }

    #[test]
    fn jra_by_name_id_and_adhoc_agree() {
        let service = test_service();
        let by_name = respond(&service, r#"{"op":"jra","paper_name":"p-23"}"#);
        let by_id = respond(&service, r#"{"op":"jra","paper_id":1}"#);
        assert!(ok(&by_name) && ok(&by_id));
        assert_eq!(by_name.get("results"), by_id.get("results"));
        // The same vector as an ad-hoc query scores identically (no COI on
        // p-23, so the masks agree too).
        let adhoc = respond(&service, r#"{"op":"jra","paper":[0.0,0.3,0.7]}"#);
        assert!(ok(&adhoc));
        let score = |v: &Json| {
            v.get("results").unwrap().as_arr().unwrap()[0].get("score").unwrap().as_f64().unwrap()
        };
        assert_eq!(score(&by_id).to_bits(), score(&adhoc).to_bits());
    }

    #[test]
    fn coi_respected_in_stored_queries() {
        let service = test_service();
        let v = respond(&service, r#"{"op":"jra","paper_name":"p-17"}"#);
        assert!(ok(&v));
        let group = v.get("results").unwrap().as_arr().unwrap()[0].get("group").unwrap().clone();
        // alice (id 0) is conflicted with p-17.
        assert!(!group.as_arr().unwrap().iter().any(|r| r.as_usize() == Some(0)));
    }

    #[test]
    fn update_then_query_sees_new_epoch() {
        let service = test_service();
        let up = respond(
            &service,
            r#"{"op":"update","updates":[{"kind":"add_reviewer","name":"dave","expertise":[0.0,0.0,1.0]}]}"#,
        );
        assert!(ok(&up), "{up}");
        assert_eq!(up.get("epoch").and_then(Json::as_usize), Some(1));
        assert_eq!(up.get("reviewers").and_then(Json::as_usize), Some(4));
        // dave now dominates topic-3-heavy queries.
        let v = respond(&service, r#"{"op":"jra","paper":[0.0,0.0,1.0],"delta_p":1}"#);
        let group = v.get("results").unwrap().as_arr().unwrap()[0].get("group").unwrap().clone();
        assert_eq!(group.as_arr().unwrap()[0].as_usize(), Some(3));
    }

    #[test]
    fn batch_reports_per_query_errors() {
        let service = test_service();
        let v = respond(
            &service,
            r#"{"op":"batch","queries":[{"paper_id":0},{"paper_id":99},{"paper_name":"p-23","top_k":2}]}"#,
        );
        assert!(ok(&v), "{v}");
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert!(ok(&results[0]));
        assert!(!ok(&results[1]));
        assert!(ok(&results[2]));
        assert_eq!(results[2].get("results").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn batch_parse_errors_stay_per_entry() {
        // A query that fails at *parse* time (bad delta_p type) must not
        // poison its positional neighbours.
        let service = test_service();
        let v = respond(
            &service,
            r#"{"op":"batch","queries":[{"paper_id":0},{"paper_id":1,"delta_p":"two"},{"paper_id":1}]}"#,
        );
        assert!(ok(&v), "{v}");
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 3);
        assert!(ok(&results[0]));
        assert!(!ok(&results[1]));
        assert!(results[1].get("error").unwrap().as_str().unwrap().contains("delta_p"));
        assert!(ok(&results[2]));
        // Positional integrity: entries 0 and 2 carry real results.
        assert!(results[0].get("results").is_some());
        assert!(results[2].get("results").is_some());
    }

    #[test]
    fn batch_name_resolution_errors_stay_per_entry() {
        // A name that fails at *plan* time behaves exactly like a parse
        // failure: its own error entry, neighbours unharmed.
        let service = test_service();
        let v = respond(
            &service,
            r#"{"op":"batch","queries":[{"paper_id":0},{"paper_name":"p-99"},{"paper_id":1}]}"#,
        );
        assert!(ok(&v), "{v}");
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert!(ok(&results[0]));
        assert_eq!(results[1].get("error").unwrap().as_str().unwrap(), "unknown paper 'p-99'");
        assert!(ok(&results[2]));
    }

    #[test]
    fn assign_and_stats_roundtrip() {
        let service = test_service();
        let a = respond(&service, r#"{"op":"assign","method":"SDGA"}"#);
        assert!(ok(&a), "{a}");
        assert_eq!(a.get("groups").unwrap().as_arr().unwrap().len(), 2);
        let s = respond(&service, r#"{"op":"stats"}"#);
        assert!(ok(&s));
        assert_eq!(s.get("papers").and_then(Json::as_usize), Some(2));
        assert_eq!(s.get("scoring").and_then(Json::as_str), Some("weighted"));
        assert!(s.get("candidate_support").is_some());
        // v1 stats stay free of the v2-only members.
        assert!(s.get("cache").is_none());
        assert!(s.get("store").is_none());
    }

    #[test]
    fn malformed_lines_do_not_kill_the_session() {
        let service = test_service();
        let input =
            "not json\n{\"op\":\"nope\"}\n{\"op\":\"jra\",\"paper_id\":0}\n\n{\"op\":\"stats\"}\n";
        let mut out = Vec::new();
        serve_connection(&service, input.as_bytes(), &mut out).unwrap();
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim_end().lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"ok\":false"));
        assert!(lines[1].contains("unknown op"));
        assert!(lines[2].contains("\"ok\":true"));
        assert!(lines[3].contains("\"ok\":true"));
    }

    #[test]
    fn pruning_override_parses_and_bad_values_error() {
        let service = test_service();
        let v = respond(&service, r#"{"op":"jra","paper_id":0,"pruning":"topk:2"}"#);
        assert!(ok(&v), "{v}");
        let bad = respond(&service, r#"{"op":"jra","paper_id":0,"pruning":"bogus"}"#);
        assert!(!ok(&bad));
    }

    #[test]
    fn v2_responses_carry_cache_and_key() {
        let service = test_service();
        let cold = respond(&service, r#"{"v":2,"op":"jra","paper_id":0}"#);
        assert!(ok(&cold), "{cold}");
        assert_eq!(cold.get("v").and_then(Json::as_usize), Some(2));
        assert_eq!(cold.get("cache").and_then(Json::as_str), Some("miss"));
        assert!(cold.get("key").and_then(Json::as_str).unwrap().starts_with("jra|"));
        let warm = respond(&service, r#"{"v":2,"op":"jra","paper_id":0}"#);
        assert_eq!(warm.get("cache").and_then(Json::as_str), Some("hit"));
        // Identical answers, hit or miss — the cache contract.
        assert_eq!(cold.get("results"), warm.get("results"));
        // And a v1 spelling of the same query also hits the shared cache.
        let v1 = respond(&service, r#"{"op":"jra","paper_id":0}"#);
        assert_eq!(v1.get("results"), warm.get("results"));
        assert!(v1.get("cache").is_none(), "v1 responses stay v1-shaped");
    }

    #[test]
    fn v2_batch_reports_per_entry_cache() {
        let service = test_service();
        respond(&service, r#"{"op":"jra","paper_id":1}"#);
        let v =
            respond(&service, r#"{"v":2,"op":"batch","queries":[{"paper_id":1},{"paper_id":0}]}"#);
        assert!(ok(&v), "{v}");
        let results = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(results[0].get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(results[1].get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(v.get("cache").and_then(Json::as_str), Some("miss"));
    }

    #[test]
    fn v2_stats_reports_cache_and_store_counters() {
        let service = test_service();
        respond(&service, r#"{"op":"jra","paper_id":0}"#);
        respond(&service, r#"{"op":"jra","paper_id":0}"#);
        respond(&service, r#"{"op":"update","updates":[{"kind":"retire_reviewer","reviewer":2}]}"#);
        let s = respond(&service, r#"{"v":2,"op":"stats"}"#);
        assert!(ok(&s), "{s}");
        let cache = s.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_usize), Some(1));
        assert_eq!(cache.get("misses").and_then(Json::as_usize), Some(1));
        assert_eq!(cache.get("size").and_then(Json::as_usize), Some(0), "publish cleared");
        let store = s.get("store").unwrap();
        assert_eq!(store.get("batches").and_then(Json::as_usize), Some(1));
        // Page metrics: the retire patch cloned the reviewer page (and the
        // candidate rows it left), while the untouched paper page stayed
        // physically shared with the previous epoch.
        assert!(store.get("pages_cloned").and_then(Json::as_usize).unwrap() > 0);
        assert!(store.get("pages_shared").and_then(Json::as_usize).unwrap() > 0);
        assert_eq!(store.get("last_pages_cloned"), store.get("pages_cloned"));
        let bytes = store.get("snapshot_bytes").and_then(Json::as_usize).unwrap();
        assert!(bytes > 0);
        assert_eq!(store.get("peak_snapshot_bytes").and_then(Json::as_usize), Some(bytes));
        assert!(s.get("timings").is_none(), "timings are opt-in");
        let t = respond(&service, r#"{"v":2,"op":"stats","timings":true}"#);
        assert!(t.get("timings").is_some());
    }

    #[test]
    fn v2_loss_bound_appears_under_topk() {
        let service = test_service();
        let v = respond(&service, r#"{"v":2,"op":"jra","paper_id":0,"pruning":"topk:1"}"#);
        assert!(ok(&v), "{v}");
        assert!(v.get("loss_bound").and_then(Json::as_f64).unwrap() > 0.0);
        let exact = respond(&service, r#"{"v":2,"op":"jra","paper_id":0}"#);
        assert!(exact.get("loss_bound").is_none());
    }

    #[test]
    fn unsupported_protocol_version_errors() {
        let service = test_service();
        let v = respond(&service, r#"{"v":3,"op":"stats"}"#);
        assert!(!ok(&v));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("protocol version"));
    }

    #[test]
    fn busy_response_is_structured_and_versioned() {
        // Saturate: with the only solve slot held and no waiting room,
        // every solvable op rejects.
        let frontend = Frontend::new(
            Arc::new(crate::api::Service::new(test_instance(), Scoring::WeightedCoverage, 42)),
            crate::frontend::FrontendOptions { max_inflight: 1, queue_depth: 0, linger: 1 },
        );
        let _permit = frontend.permit().expect("first permit");
        let v1 = respond(&frontend, r#"{"op":"jra","paper_id":0}"#);
        assert!(!ok(&v1));
        assert_eq!(v1.get("busy").and_then(Json::as_bool), Some(true));
        assert!(v1.get("v").is_none());
        let v2 = respond(&frontend, r#"{"v":2,"op":"assign"}"#);
        assert_eq!(v2.get("busy").and_then(Json::as_bool), Some(true));
        assert_eq!(v2.get("v").and_then(Json::as_usize), Some(2));
        // update and stats bypass admission even while saturated.
        let up = respond(
            &frontend,
            r#"{"op":"update","updates":[{"kind":"add_reviewer","name":"dave","expertise":[0.0,0.0,1.0]}]}"#,
        );
        assert!(ok(&up), "{up}");
        let s = respond(&frontend, r#"{"v":2,"op":"stats"}"#);
        assert!(ok(&s), "{s}");
        assert_eq!(s.get("frontend").unwrap().get("rejected").and_then(Json::as_usize), Some(2));
    }

    #[test]
    fn v2_stats_reports_frontend_counters() {
        let frontend = test_service();
        respond(&frontend, r#"{"op":"jra","paper_id":0}"#);
        respond(&frontend, r#"{"op":"jra","paper_id":1}"#);
        let s = respond(&frontend, r#"{"v":2,"op":"stats"}"#);
        assert!(ok(&s), "{s}");
        let f = s.get("frontend").unwrap();
        // Sequential sessions drain each jra as its own batch of 1.
        assert_eq!(f.get("batches").and_then(Json::as_usize), Some(2));
        assert_eq!(f.get("batched_requests").and_then(Json::as_usize), Some(2));
        assert_eq!(f.get("max_batch").and_then(Json::as_usize), Some(1));
        assert_eq!(f.get("queued").and_then(Json::as_usize), Some(0));
        assert_eq!(f.get("rejected").and_then(Json::as_usize), Some(0));
        let cache = s.get("cache").unwrap();
        assert_eq!(cache.get("cap").and_then(Json::as_usize), Some(crate::api::DEFAULT_CACHE_CAP));
        assert_eq!(cache.get("evictions").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn multi_session_groups_by_connection_and_syncs() {
        let frontend = Arc::new(test_service());
        let input = "\
# two clients, interleaved; b's lines must come out after all of a's
a {\"op\":\"jra\",\"paper_id\":0}
b {\"op\":\"jra\",\"paper_id\":1}
a {\"op\":\"stats\"}
#sync
b {\"op\":\"jra\",\"paper_name\":\"p-17\"}
";
        let mut out = Vec::new();
        serve_multi(&frontend, input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.trim_end().lines().collect();
        assert_eq!(lines.len(), 4);
        // Grouped by first-seen connection order: a, a, b, b.
        assert!(lines[0].starts_with("a\t") && lines[1].starts_with("a\t"));
        assert!(lines[2].starts_with("b\t") && lines[3].starts_with("b\t"));
        for line in &lines {
            assert!(line.contains("\"ok\":true"), "{line}");
        }
        assert_eq!(frontend.counters().connections, 2);
    }

    #[test]
    fn multi_session_is_deterministic_run_to_run() {
        let input = "\
a {\"op\":\"jra\",\"paper_id\":0}
b {\"op\":\"jra\",\"paper_id\":1}
c {\"op\":\"jra\",\"paper\":[0.1,0.1,0.8]}
#sync
b {\"op\":\"update\",\"updates\":[{\"kind\":\"retire_reviewer\",\"reviewer\":2}]}
#sync
a {\"op\":\"jra\",\"paper_id\":0}
c {\"v\":2,\"op\":\"jra\",\"paper_id\":1}
a {\"op\":\"stats\"}
";
        let run = || {
            let frontend = Arc::new(test_service());
            let mut out = Vec::new();
            serve_multi(&frontend, input.as_bytes(), &mut out).unwrap();
            String::from_utf8(out).unwrap()
        };
        let first = run();
        for _ in 0..4 {
            assert_eq!(run(), first, "multi-session replay must be byte-identical");
        }
    }

    #[test]
    fn tcp_session_roundtrips() {
        use std::io::{BufRead, BufReader, Write};
        let service = Arc::new(test_service());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                // Accept exactly one connection for the test.
                let (socket, _) = listener.accept().unwrap();
                let reader = BufReader::new(socket.try_clone().unwrap());
                serve_connection(&service, reader, socket).unwrap();
            })
        };
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        client.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        drop(client);
        drop(reader);
        server.join().unwrap();
    }

    /// The (name, depth) skeleton of a response's inline trace.
    fn span_shape(v: &Json) -> Vec<(String, usize)> {
        v.get("trace")
            .expect("trace member")
            .get("spans")
            .expect("spans array")
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| {
                (
                    s.get("name").unwrap().as_str().unwrap().to_string(),
                    s.get("depth").unwrap().as_usize().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn trace_structure_is_deterministic_for_frontend_jra() {
        let service = test_service();
        let shape = |line: &str| span_shape(&respond(&service, line));
        let expect: Vec<(String, usize)> =
            ["plan", "admit", "queue_wait", "cache_probe", "solve", "fanout", "coalesce"]
                .iter()
                .map(|n| {
                    (n.to_string(), usize::from(matches!(*n, "cache_probe" | "solve" | "fanout")))
                })
                .collect();
        assert_eq!(shape(r#"{"op":"jra","paper_id":1,"v":2,"trace":true}"#), expect);
        // A cache hit skips the solve stage — the structure reflects the
        // work actually done, deterministically.
        let hit = shape(r#"{"op":"jra","paper_id":1,"v":2,"trace":true}"#);
        assert_eq!(
            hit,
            [
                ("plan", 0),
                ("admit", 0),
                ("queue_wait", 0),
                ("cache_probe", 1),
                ("fanout", 1),
                ("coalesce", 0)
            ]
            .map(|(n, d)| (n.to_string(), d))
        );
        // Durations stay behind the timings opt-in.
        let v = respond(&service, r#"{"op":"jra","paper_id":1,"v":2,"trace":true}"#);
        assert!(!v.to_string().contains("\"us\""), "{v}");
        let timed =
            respond(&service, r#"{"op":"jra","paper_id":1,"v":2,"trace":true,"timings":true}"#);
        assert!(timed.to_string().contains("\"us\""), "{timed}");
    }

    #[test]
    fn trace_structure_for_update_and_stats() {
        let service = test_service();
        let up = respond(
            &service,
            r#"{"op":"update","v":2,"trace":true,"updates":[{"kind":"retire_reviewer","reviewer":2}]}"#,
        );
        assert!(ok(&up), "{up}");
        assert_eq!(
            span_shape(&up),
            [("plan", 0), ("build", 1), ("publish", 1), ("exec", 0)]
                .map(|(n, d)| (n.to_string(), d))
        );
        let stats = respond(&service, r#"{"op":"stats","v":2,"trace":true}"#);
        assert_eq!(span_shape(&stats), [("plan", 0), ("exec", 0)].map(|(n, d)| (n.to_string(), d)));
    }

    #[test]
    fn trace_is_v2_only_and_opt_in() {
        let service = test_service();
        let v1 = respond(&service, r#"{"op":"jra","paper_id":1,"trace":true}"#);
        assert!(ok(&v1));
        assert!(v1.get("trace").is_none(), "v1 must never grow fields: {v1}");
        let v2_plain = respond(&service, r#"{"op":"jra","paper_id":1,"v":2}"#);
        assert!(v2_plain.get("trace").is_none(), "trace is opt-in: {v2_plain}");
    }

    #[test]
    fn metrics_op_is_deterministic_by_default() {
        let service = test_service();
        assert!(ok(&respond(&service, r#"{"op":"jra","paper_id":1,"v":2}"#)));
        assert!(ok(&respond(&service, r#"{"op":"jra","paper_id":1,"v":2}"#)));
        let m = respond(&service, r#"{"op":"metrics","v":2}"#);
        assert!(ok(&m), "{m}");
        let counters = m.get("counters").expect("counters object");
        assert_eq!(counters.get("requests_total{op=\"jra\"}").and_then(Json::as_usize), Some(2));
        assert_eq!(counters.get("cache_hits_total").and_then(Json::as_usize), Some(1));
        assert_eq!(counters.get("cache_misses_total").and_then(Json::as_usize), Some(1));
        let hist = m.get("hist").expect("hist object");
        let jra = hist.get("op_latency_seconds{op=\"jra\"}").expect("jra latency series");
        assert_eq!(jra.get("count").and_then(Json::as_usize), Some(2));
        let text = m.to_string();
        assert!(!text.contains("p50_us"), "quantiles are opt-in: {text}");
        assert!(!text.contains("\"slow\""), "slow log is opt-in: {text}");
        // Identical requests replay to an identical metrics body.
        let service2 = test_service();
        assert!(ok(&respond(&service2, r#"{"op":"jra","paper_id":1,"v":2}"#)));
        assert!(ok(&respond(&service2, r#"{"op":"jra","paper_id":1,"v":2}"#)));
        assert_eq!(text, respond(&service2, r#"{"op":"metrics","v":2}"#).to_string());
    }

    #[test]
    fn metrics_op_timings_and_slow_opt_ins() {
        let service = test_service();
        assert!(ok(&respond(&service, r#"{"op":"jra","paper_id":1,"v":2}"#)));
        let timed = respond(&service, r#"{"op":"metrics","v":2,"timings":true}"#);
        assert!(timed.to_string().contains("p50_us"), "{timed}");
        let slow = respond(&service, r#"{"op":"metrics","v":2,"slow":true}"#);
        let log = slow.get("slow").expect("slow log").as_arr().unwrap();
        assert!(!log.is_empty(), "the jra trace must rank in an empty slow log");
        assert!(log[0].get("spans").is_some(), "slow entries are span trees: {slow}");
    }

    #[test]
    fn metrics_op_rejects_v1() {
        let service = test_service();
        let v = respond(&service, r#"{"op":"metrics"}"#);
        assert!(!ok(&v));
        assert!(v.to_string().contains("v2"), "{v}");
    }

    #[test]
    fn metrics_http_endpoint_serves_prometheus_text() {
        use std::io::{Read as _, Write as _};
        let service = test_service();
        assert!(ok(&respond(&service, r#"{"op":"jra","paper_id":1,"v":2}"#)));
        let telemetry = Arc::clone(service.service().telemetry());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // The accept loop runs forever; the test thread is detached.
        std::thread::spawn(move || serve_metrics(listener, telemetry));
        let scrape = |path: &str| {
            let mut client = std::net::TcpStream::connect(addr).unwrap();
            write!(client, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut response = String::new();
            client.read_to_string(&mut response).unwrap();
            response
        };
        let response = scrape("/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("text/plain; version=0.0.4"), "{response}");
        let body = response.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# TYPE wgrap_requests_total counter"), "{body}");
        assert!(body.contains("wgrap_requests_total{op=\"jra\"} 1"), "{body}");
        assert!(body.contains("wgrap_op_latency_seconds{op=\"jra\",quantile=\"0.5\"}"), "{body}");
        assert!(body.contains("wgrap_op_latency_seconds_count{op=\"jra\"} 1"), "{body}");
        assert!(scrape("/nope").starts_with("HTTP/1.1 404"), "unknown paths 404");
    }

    #[test]
    fn disabled_telemetry_records_nothing_and_changes_no_bytes() {
        use crate::api::{ServeOptions, Service};
        let quiet = Frontend::with_defaults(Arc::new(Service::with_options(
            test_instance(),
            Scoring::WeightedCoverage,
            42,
            ServeOptions { telemetry: false, ..ServeOptions::default() },
        )));
        let loud = test_service();
        // Answer bytes are telemetry-independent (counter-reporting ops
        // like v2 stats/metrics read zeros instead — observability is the
        // one thing the flag is allowed to change).
        for line in [r#"{"op":"jra","paper_id":1}"#, r#"{"op":"jra","paper_id":1,"v":2}"#] {
            assert_eq!(
                respond(&quiet, line).to_string(),
                respond(&loud, line).to_string(),
                "telemetry must never change answer bytes"
            );
        }
        let t = quiet.service().telemetry();
        assert_eq!(t.counter("requests_total{op=\"jra\"}").get(), 0);
        assert_eq!(t.traces().pushed(), 0);
        assert_eq!(t.histogram("op_latency_seconds{op=\"jra\"}").snapshot().count(), 0);
    }
}
