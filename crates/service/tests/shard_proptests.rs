//! The sharding contracts ([`ShardedStore`] against the unsharded paths):
//!
//! 1. **Lockstep apply ≡ per-shard reference** — after any update
//!    sequence, every shard of a [`ShardedStore`] is bit-identical to a
//!    standalone [`VersionedStore`] built from the initial plan's
//!    sub-instance with the plan-split sub-batch applied — for all four
//!    scorings, at N ∈ {1, 2, 7} shards, whether the batch lands
//!    atomically or one update per epoch.
//! 2. **Scatter-gather JRA ≡ unsharded JRA** — a sharded
//!    [`jra_batch`](ShardedStore::jra_batch) over any query mix (stored,
//!    ad-hoc, out-of-range, top-k, excludes) returns answers bit-identical
//!    to one unsharded [`JraBatch`]: same groups, same score bits, same
//!    node counts, same error strings — at N ∈ {1, 2, 7}, with the
//!    `rayon` feature on or off (CI runs both).
//! 3. **Reconciled CRA is capacity-feasible** — per-shard solves plus the
//!    cross-shard reconciliation pass always yield a globally feasible
//!    assignment: every reviewer load ≤ δr, every group exactly δp
//!    distinct non-conflicted reviewers, finite coverage.

use proptest::prelude::*;
use wgrap_core::engine::spec::MethodKind;
use wgrap_core::engine::PruningPolicy;
use wgrap_core::prelude::{CraAlgorithm, Instance, Scoring};
use wgrap_core::topic::TopicVector;
use wgrap_service::testutil::{assert_snapshot_bit_eq, reference_apply};
use wgrap_service::{
    JraBatch, JraQuery, QueryPaper, ShardPlan, ShardedStore, Update, VersionedStore,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 7];

fn sparse_topic_vector(dim: usize) -> impl Strategy<Value = TopicVector> {
    (proptest::collection::vec(0.0..1.0f64, dim), proptest::collection::vec(any::<bool>(), dim))
        .prop_map(|(mut v, mask)| {
            for (w, drop) in v.iter_mut().zip(mask) {
                if drop {
                    *w = 0.0;
                }
            }
            if v.iter().sum::<f64>() <= 0.0 {
                v[0] = 1.0;
            }
            TopicVector::new(v).normalized()
        })
}

/// An update before id resolution: ids become concrete only while replaying
/// (the pool grows and shrinks as the sequence applies).
#[derive(Debug, Clone)]
enum RawUpdate {
    AddPaper { topics: TopicVector, coi_seed: u32 },
    AddReviewer { expertise: TopicVector },
    RetireReviewer { seed: u32 },
    PatchScores { seed: u32, expertise: TopicVector },
}

fn raw_update(dim: usize) -> impl Strategy<Value = RawUpdate> {
    (0u32..4, sparse_topic_vector(dim), any::<u32>()).prop_map(|(kind, v, seed)| match kind {
        0 => RawUpdate::AddPaper { topics: v, coi_seed: seed },
        1 => RawUpdate::AddReviewer { expertise: v },
        2 => RawUpdate::RetireReviewer { seed },
        _ => RawUpdate::PatchScores { seed, expertise: v },
    })
}

/// Resolve raw updates into concrete ones against the evolving counts, so
/// the sharded and the reference path replay the *same* sequence.
fn resolve(inst: &Instance, raws: &[RawUpdate]) -> Vec<Update> {
    let (mut num_p, mut num_r) = (inst.num_papers(), inst.num_reviewers());
    let capacity_left = |num_p: usize, num_r: usize, inst: &Instance| {
        num_r * inst.delta_r() >= (num_p + 1) * inst.delta_p()
    };
    let mut out = Vec::new();
    for raw in raws {
        match raw {
            RawUpdate::AddPaper { topics, coi_seed } => {
                if !capacity_left(num_p, num_r, inst) {
                    continue; // would be rejected; keep the sequence applying
                }
                let coi = if coi_seed % 3 == 0 && num_r > 0 {
                    vec![(coi_seed / 3) % num_r as u32]
                } else {
                    Vec::new()
                };
                out.push(Update::AddPaper { name: None, topics: topics.clone(), coi });
                num_p += 1;
            }
            RawUpdate::AddReviewer { expertise } => {
                out.push(Update::AddReviewer { name: None, expertise: expertise.clone() });
                num_r += 1;
            }
            RawUpdate::RetireReviewer { seed } => {
                out.push(Update::RetireReviewer { reviewer: seed % num_r as u32 });
            }
            RawUpdate::PatchScores { seed, expertise } => {
                out.push(Update::PatchScores {
                    reviewer: seed % num_r as u32,
                    expertise: expertise.clone(),
                });
            }
        }
    }
    out
}

fn instance_strategy(dim: usize) -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec(sparse_topic_vector(dim), 2..5),
        proptest::collection::vec(sparse_topic_vector(dim), 4..8),
        1usize..3,
    )
        .prop_map(move |(papers, reviewers, delta_p)| {
            let delta_p = delta_p.min(reviewers.len());
            // Generous workload headroom so AddPaper updates mostly apply
            // and reconciliation always has a substitute to hand out.
            let delta_r = Instance::minimal_delta_r(papers.len(), reviewers.len(), delta_p) + 2;
            Instance::new(papers, reviewers, delta_p, delta_r).expect("valid")
        })
}

/// Derive one JRA query from a seed: mostly stored papers, with ad-hoc,
/// out-of-range, top-k, and exclude variants mixed in deterministically.
fn query_from_seed(
    seed: u32,
    num_papers: usize,
    num_reviewers: usize,
    adhoc: &TopicVector,
) -> JraQuery {
    let mut query = match seed % 5 {
        0 => JraQuery::new(QueryPaper::Adhoc(adhoc.clone())),
        1 => JraQuery::new(QueryPaper::Stored(num_papers + seed as usize % 3)), // out of range
        _ => JraQuery::new(QueryPaper::Stored(seed as usize % num_papers)),
    };
    if seed.is_multiple_of(4) {
        query.top_k = 1 + seed as usize % 3;
    }
    if seed.is_multiple_of(7) && num_reviewers > 0 {
        query.exclude = vec![(seed / 7) % num_reviewers as u32];
    }
    query
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: lockstep apply. Each shard of a [`ShardedStore`] that
    /// applied an update batch must be bit-identical to a reference replay
    /// of the plan-split sub-batch over the plan-split sub-instance —
    /// whether the sharded store saw one atomic batch or one update per
    /// epoch (the split is per-update, so both routes see the same
    /// sub-sequences).
    #[test]
    fn sharded_apply_matches_per_shard_reference(
        inst in instance_strategy(5),
        raws in proptest::collection::vec(raw_update(5), 1..8),
        seed in 0u64..1_000,
    ) {
        let updates = resolve(&inst, &raws);
        let added = updates.iter().filter(|u| matches!(u, Update::AddPaper { .. })).count();
        for num_shards in SHARD_COUNTS {
            let plan = ShardPlan::balanced(inst.num_papers(), num_shards).expect("valid plan");
            let subs = plan.split_instance(&inst).expect("plan covers the instance");
            let split = plan.split_updates(&updates);
            for scoring in Scoring::ALL {
                // One atomic batch.
                let sharded =
                    ShardedStore::new(inst.clone(), scoring, seed, num_shards).expect("builds");
                if !updates.is_empty() {
                    sharded.apply(&updates).expect("resolved updates apply");
                    prop_assert_eq!(sharded.global_epoch(), 1);
                }
                // One epoch per update: same final state on every shard.
                let stepped =
                    ShardedStore::new(inst.clone(), scoring, seed, num_shards).expect("builds");
                for u in &updates {
                    stepped.apply(std::slice::from_ref(u)).expect("applies");
                }
                prop_assert_eq!(stepped.global_epoch(), updates.len() as u64);
                prop_assert_eq!(
                    sharded.plan().num_papers(),
                    inst.num_papers() + added,
                    "plan must grow with AddPaper"
                );
                for s in 0..num_shards {
                    let want = reference_apply(&subs[s], scoring, seed, &split[s])
                        .expect("reference applies");
                    assert_snapshot_bit_eq(&sharded.shard(s).snapshot(), &want);
                    assert_snapshot_bit_eq(&stepped.shard(s).snapshot(), &want);
                }
            }
        }
    }

    /// Contract 2: scatter-gather JRA bit-identity. Any query mix against
    /// a [`ShardedStore`] answers exactly like one unsharded [`JraBatch`]
    /// over the whole instance — groups, score bits, node counts, and
    /// per-entry error strings all equal, at every shard count.
    #[test]
    fn sharded_jra_batch_matches_unsharded_bitwise(
        inst in instance_strategy(5),
        qseeds in proptest::collection::vec(any::<u32>(), 1..10),
        adhoc in sparse_topic_vector(5),
        seed in 0u64..1_000,
    ) {
        let queries: Vec<JraQuery> = qseeds
            .iter()
            .map(|&qs| query_from_seed(qs, inst.num_papers(), inst.num_reviewers(), &adhoc))
            .collect();
        for scoring in Scoring::ALL {
            let unsharded = VersionedStore::new(inst.clone(), scoring, seed);
            let mut reference = JraBatch::new(unsharded.snapshot(), PruningPolicy::Auto);
            for q in &queries {
                reference.push(q.clone());
            }
            let want = reference.run();
            for num_shards in SHARD_COUNTS {
                let sharded =
                    ShardedStore::new(inst.clone(), scoring, seed, num_shards).expect("builds");
                let got = sharded.jra_batch(&queries, PruningPolicy::Auto);
                prop_assert_eq!(got.len(), want.len());
                for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                    match (g, w) {
                        (Ok(gs), Ok(ws)) => {
                            prop_assert_eq!(gs.len(), ws.len(), "query {} result count", i);
                            for (a, b) in gs.iter().zip(ws) {
                                prop_assert_eq!(&a.group, &b.group, "query {} group", i);
                                prop_assert_eq!(
                                    a.score.to_bits(),
                                    b.score.to_bits(),
                                    "query {} score bits ({:?})",
                                    i,
                                    scoring
                                );
                                prop_assert_eq!(a.nodes, b.nodes, "query {} node count", i);
                            }
                        }
                        (Err(e), Err(f)) => {
                            prop_assert_eq!(e.to_string(), f.to_string(), "query {} error", i)
                        }
                        _ => prop_assert!(
                            false,
                            "query {i}: sharded/unsharded disagree on ok-ness ({num_shards} shards)"
                        ),
                    }
                }
            }
        }
    }

    /// Contract 3: reconciled CRA feasibility. Per-shard solves enforce δr
    /// only against their own slice of the papers, so the cross-shard
    /// reconciliation pass must restore the global constraint: every
    /// reviewer ends at load ≤ δr and every paper keeps exactly δp
    /// distinct, non-conflicted reviewers — including after updates grow
    /// the instance past the initial plan.
    #[test]
    fn reconciled_assignment_is_capacity_feasible(
        inst in instance_strategy(5),
        raws in proptest::collection::vec(raw_update(5), 0..5),
        seed in 0u64..1_000,
        shard_pick in 0usize..3,
    ) {
        let num_shards = [2usize, 3, 7][shard_pick];
        let updates = resolve(&inst, &raws);
        let reference = VersionedStore::new(inst.clone(), Scoring::WeightedCoverage, seed);
        if !updates.is_empty() {
            reference.apply(&updates).expect("resolved updates apply");
        }
        let snapshot = reference.snapshot();
        let current = snapshot.instance();
        let sharded =
            ShardedStore::new(inst, Scoring::WeightedCoverage, seed, num_shards).expect("builds");
        if !updates.is_empty() {
            sharded.apply(&updates).expect("resolved updates apply");
        }
        let answer = sharded
            .assign(MethodKind::Cra(CraAlgorithm::Greedy), PruningPolicy::Auto)
            .expect("slackful instances stay assignable");
        prop_assert_eq!(answer.assignment.num_papers(), current.num_papers());
        prop_assert!(answer.coverage.is_finite());
        let mut loads = vec![0usize; current.num_reviewers()];
        for p in 0..current.num_papers() {
            let group = answer.assignment.group(p);
            prop_assert_eq!(group.len(), current.delta_p(), "paper {} group size", p);
            let mut distinct: Vec<usize> = group.to_vec();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), current.delta_p(), "paper {} has repeats", p);
            for &r in group {
                prop_assert!(r < current.num_reviewers(), "paper {} reviewer {} in range", p, r);
                prop_assert!(!current.is_coi(r, p), "paper {} assigned conflicted reviewer {}", p, r);
                loads[r] += 1;
            }
        }
        for (r, &load) in loads.iter().enumerate() {
            prop_assert!(
                load <= current.delta_r(),
                "reviewer {} load {} exceeds delta_r {}",
                r,
                load,
                current.delta_r()
            );
        }
    }
}
