//! Generic backtracking subset-selection constraint solver.
//!
//! Stand-in for the CPLEX CP Optimizer baseline of §5.1: the paper observes
//! that a generic constraint-programming search is orders of magnitude
//! slower than BBA on JRA because it lacks a tight upper bound (Eq. 3). This
//! engine deliberately mirrors that: lexicographic branching (no value
//! ordering heuristics) and a naive monotone bound supplied by the caller —
//! typically "the objective if every remaining candidate were added".

use std::time::{Duration, Instant};

/// Result of a subset-selection search.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsetCpResult {
    /// Best subset found (sorted ascending).
    pub best: Vec<usize>,
    /// Objective of `best`.
    pub objective: f64,
    /// Search nodes explored.
    pub nodes: u64,
    /// Time to the *first* feasible (complete) subset, if any was found.
    pub first_feasible: Option<Duration>,
    /// Whether the search completed (false = time limit hit).
    pub complete: bool,
}

/// Exact maximisation of `objective` over all `k`-subsets of `0..n`,
/// excluding `forbidden` items.
///
/// * `objective(&subset)` is evaluated on complete `k`-subsets.
/// * `bound(&partial, next_start)` must over-estimate the best completion of
///   `partial` using items `≥ next_start`; return `f64::INFINITY` to disable
///   pruning (the "pure CP" mode).
pub struct SubsetCp<'a> {
    n: usize,
    k: usize,
    forbidden: &'a [bool],
    time_limit: Option<Duration>,
}

impl<'a> SubsetCp<'a> {
    /// Create a searcher over `n` items choosing `k`, skipping items where
    /// `forbidden[i]` is true (pass an all-false slice for no exclusions).
    pub fn new(n: usize, k: usize, forbidden: &'a [bool], time_limit: Option<Duration>) -> Self {
        assert_eq!(forbidden.len(), n);
        assert!(k >= 1 && k <= n, "need 1 <= k <= n");
        Self { n, k, forbidden, time_limit }
    }

    /// Run the exhaustive search.
    pub fn maximize(
        &self,
        objective: &mut dyn FnMut(&[usize]) -> f64,
        bound: &mut dyn FnMut(&[usize], usize) -> f64,
    ) -> SubsetCpResult {
        let start = Instant::now();
        let mut best: Vec<usize> = vec![];
        let mut best_obj = f64::NEG_INFINITY;
        let mut nodes = 0u64;
        let mut first_feasible = None;
        let mut partial = Vec::with_capacity(self.k);
        let mut complete = true;

        // Iterative DFS over increasing-index combinations.
        // stack entry: the next candidate index to try at the current depth.
        let mut next_at_depth = vec![0usize];
        loop {
            if let Some(tl) = self.time_limit {
                if nodes.is_multiple_of(1024) && start.elapsed() > tl {
                    complete = false;
                    break;
                }
            }
            let depth = partial.len();
            let Some(cursor) = next_at_depth.last_mut() else { break };
            // Not enough items left to fill the subset: backtrack.
            let remaining_needed = self.k - depth;
            if *cursor + remaining_needed > self.n {
                next_at_depth.pop();
                partial.pop();
                if let Some(c) = next_at_depth.last_mut() {
                    *c += 1;
                }
                continue;
            }
            let i = *cursor;
            if self.forbidden[i] {
                *cursor += 1;
                continue;
            }
            nodes += 1;
            partial.push(i);
            if partial.len() == self.k {
                let obj = objective(&partial);
                if first_feasible.is_none() {
                    first_feasible = Some(start.elapsed());
                }
                if obj > best_obj {
                    best_obj = obj;
                    best = partial.clone();
                }
                partial.pop();
                *cursor += 1;
            } else {
                let b = bound(&partial, i + 1);
                if b <= best_obj {
                    partial.pop();
                    *cursor += 1;
                } else {
                    let next = i + 1;
                    next_at_depth.push(next);
                }
            }
        }

        SubsetCpResult {
            best,
            objective: if best_obj.is_finite() { best_obj } else { 0.0 },
            nodes,
            first_feasible,
            complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_forbidden(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    #[test]
    fn picks_best_pair() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0];
        let forb = no_forbidden(5);
        let cp = SubsetCp::new(5, 2, &forb, None);
        let res = cp.maximize(&mut |s| s.iter().map(|&i| vals[i]).sum(), &mut |_, _| f64::INFINITY);
        assert_eq!(res.best, vec![2, 4]);
        assert!((res.objective - 9.0).abs() < 1e-12);
        assert!(res.complete);
    }

    #[test]
    fn respects_forbidden() {
        let vals = [3.0, 1.0, 4.0, 1.0, 5.0];
        let mut forb = no_forbidden(5);
        forb[4] = true;
        let cp = SubsetCp::new(5, 2, &forb, None);
        let res = cp.maximize(&mut |s| s.iter().map(|&i| vals[i]).sum(), &mut |_, _| f64::INFINITY);
        assert_eq!(res.best, vec![0, 2]);
    }

    #[test]
    fn bound_pruning_reduces_nodes_without_changing_answer() {
        let vals: Vec<f64> = (0..14).map(|i| ((i * 7919) % 100) as f64).collect();
        let forb = no_forbidden(14);
        let cp = SubsetCp::new(14, 4, &forb, None);
        let v2 = vals.clone();
        let unpruned =
            cp.maximize(&mut |s| s.iter().map(|&i| vals[i]).sum(), &mut |_, _| f64::INFINITY);
        // Sound bound: partial sum + (k - |partial|) * max remaining value.
        let max_val = v2.iter().cloned().fold(0.0f64, f64::max);
        let cp2 = SubsetCp::new(14, 4, &forb, None);
        let pruned = cp2.maximize(&mut |s| s.iter().map(|&i| v2[i]).sum(), &mut |partial, _| {
            let have: f64 = partial.iter().map(|&i| v2[i]).sum();
            have + (4 - partial.len()) as f64 * max_val
        });
        assert_eq!(unpruned.best, pruned.best);
        assert!(pruned.nodes <= unpruned.nodes);
    }

    #[test]
    fn k_equals_n() {
        let forb = no_forbidden(3);
        let cp = SubsetCp::new(3, 3, &forb, None);
        let res = cp.maximize(&mut |s| s.len() as f64, &mut |_, _| f64::INFINITY);
        assert_eq!(res.best, vec![0, 1, 2]);
    }

    #[test]
    fn infeasible_when_too_few_allowed() {
        let forb = vec![true, true, false];
        let cp = SubsetCp::new(3, 2, &forb, None);
        let res = cp.maximize(&mut |_| 1.0, &mut |_, _| f64::INFINITY);
        assert!(res.best.is_empty());
        assert!(res.first_feasible.is_none());
    }

    #[test]
    fn enumerates_exactly_choose_n_k_leaves() {
        // With pruning disabled, leaf count must be C(6, 3) = 20.
        let forb = no_forbidden(6);
        let cp = SubsetCp::new(6, 3, &forb, None);
        let mut leaves = 0u64;
        cp.maximize(
            &mut |_| {
                leaves += 1;
                0.0
            },
            &mut |_, _| f64::INFINITY,
        );
        assert_eq!(leaves, 20);
    }
}
