//! Cross-method invariants on mid-sized synthetic datasets: every §5.2
//! method yields a valid assignment, the paper's quality ordering holds in
//! aggregate, and the metrics behave.

use wgrap::core::cra::arap_ilp::pair_objective;
use wgrap::core::cra::ideal::{ideal_assignment, IdealMode};
use wgrap::core::cra::CraAlgorithm;
use wgrap::core::metrics;
use wgrap::datagen::areas::DB08;
use wgrap::datagen::vectors::area_instance;
use wgrap::datagen::DatasetSpec;
use wgrap::prelude::*;

fn db08_over(scale: usize, delta_p: usize, seed: u64) -> Instance {
    let spec = DatasetSpec {
        num_papers: DB08.num_papers / scale,
        num_reviewers: DB08.num_reviewers / scale,
        ..DB08
    };
    area_instance(&spec, delta_p, seed)
}

#[test]
fn all_methods_valid_on_db08_shape() {
    let scoring = Scoring::WeightedCoverage;
    for delta_p in [3usize, 5] {
        let inst = db08_over(12, delta_p, 3);
        for algo in CraAlgorithm::ALL {
            let a = algo.run(&inst, scoring, 3).unwrap();
            a.validate(&inst)
                .unwrap_or_else(|e| panic!("{} invalid at delta_p={delta_p}: {e}", algo.label()));
        }
    }
}

#[test]
fn sdga_sra_wins_on_average() {
    // Figure 10's ordering, aggregated over seeds: SDGA-SRA ≥ SDGA ≥ the
    // weak baselines (SM, per-pair ILP) on group coverage.
    let scoring = Scoring::WeightedCoverage;
    let mut totals = [0.0f64; 6];
    for seed in 0..4 {
        let inst = db08_over(12, 3, seed);
        for (i, algo) in CraAlgorithm::ALL.iter().enumerate() {
            let a = algo.run(&inst, scoring, seed).unwrap();
            totals[i] += a.coverage_score(&inst, scoring);
        }
    }
    let [sm, ilp, _brgg, greedy, sdga, sra] = totals;
    assert!(sra >= sdga - 1e-9, "SRA {sra} below SDGA {sdga}");
    assert!(sdga > sm, "SDGA {sdga} not above SM {sm}");
    assert!(sdga > ilp, "SDGA {sdga} not above per-pair ILP {ilp}");
    assert!(sra > greedy, "SDGA-SRA {sra} not above Greedy {greedy}");
}

#[test]
fn per_pair_ilp_wins_its_own_objective() {
    // The ARAP baseline must dominate every method on the *pair-sum*
    // objective even while losing on group coverage.
    let scoring = Scoring::WeightedCoverage;
    let inst = db08_over(12, 3, 9);
    let ilp = CraAlgorithm::ArapIlp.run(&inst, scoring, 9).unwrap();
    let ilp_obj = pair_objective(&inst, scoring, &ilp);
    for algo in CraAlgorithm::ALL {
        let a = algo.run(&inst, scoring, 9).unwrap();
        assert!(
            ilp_obj >= pair_objective(&inst, scoring, &a) - 1e-6,
            "{} beat ILP on ILP's own objective",
            algo.label()
        );
    }
}

#[test]
fn optimality_ratio_denominator_dominates_all_methods() {
    let scoring = Scoring::WeightedCoverage;
    let inst = db08_over(12, 4, 5);
    let ideal = ideal_assignment(&inst, scoring, IdealMode::Exact).unwrap();
    for algo in CraAlgorithm::ALL {
        let a = algo.run(&inst, scoring, 5).unwrap();
        let ratio = metrics::optimality_ratio(&inst, scoring, &a, &ideal);
        assert!(ratio <= 1.0 + 1e-9, "{}: ratio {ratio} > 1", algo.label());
        assert!(ratio > 0.5, "{}: ratio {ratio} suspiciously low", algo.label());
    }
}

#[test]
fn superiority_against_self_and_lowest_coverage_consistency() {
    let scoring = Scoring::WeightedCoverage;
    let inst = db08_over(12, 3, 11);
    let sra = CraAlgorithm::SdgaSra.run(&inst, scoring, 11).unwrap();
    let sm = CraAlgorithm::StableMatching.run(&inst, scoring, 11).unwrap();
    let s = metrics::superiority_ratio(&inst, scoring, &sra, &sm);
    assert!(s.better_or_equal() > 0.7, "SDGA-SRA vs SM only {}", s.better_or_equal());
    assert!(
        metrics::lowest_coverage(&inst, scoring, &sra)
            >= metrics::lowest_coverage(&inst, scoring, &sm) - 0.2,
        "SRA's worst paper dramatically below SM's"
    );
}

#[test]
fn coi_respected_across_all_methods() {
    let scoring = Scoring::WeightedCoverage;
    let mut inst = db08_over(12, 3, 13);
    for r in 0..inst.num_reviewers() / 2 {
        inst.add_coi(r, 0);
        inst.add_coi(r, 1);
    }
    for algo in CraAlgorithm::ALL {
        let a = algo.run(&inst, scoring, 13).unwrap();
        a.validate(&inst).unwrap();
        for p in [0usize, 1] {
            for &r in a.group(p) {
                assert!(!inst.is_coi(r, p), "{} placed a COI pair", algo.label());
            }
        }
    }
}
