//! Shard-by-paper scale-out: a [`ShardedStore`] over per-shard
//! [`VersionedStore`](crate::store::VersionedStore)s, and a scatter-gather
//! NDJSON [`Router`] for multi-process deployments.
//!
//! # Why papers are the shard key
//!
//! Everything per-paper in the engine is self-contained: candidate lists,
//! CSR rows, COI masks and the result-cache key all hang off one paper id,
//! and no score ever crosses papers. Reviewers, by contrast, are global —
//! every paper may draw from the whole pool. The plan therefore partitions
//! **papers into contiguous ranges** ([`ShardPlan`]) and **replicates the
//! reviewer pool** on every shard. A shard is then a complete, valid
//! sub-instance: the same reviewers, a slice of the papers, the same
//! `δp`/`δr`. Because a JRA query targets exactly one paper, routing it to
//! the owning shard reproduces the unsharded solve *bit for bit* — same
//! candidate row, same forbidden mask, same branch-and-bound trace — which
//! is the property the shard proptests pin down.
//!
//! # Lockstep epochs
//!
//! An admitted [`Update`](crate::store::Update) batch is split by paper
//! range (paper additions go to the last shard, reviewer changes broadcast
//! to all) and applied under a two-phase prepare/publish: every affected
//! shard's copy-on-write build runs first (each holding its store's
//! builder gate), and only when **all** builds succeed are they published,
//! in shard order, under one global epoch. Any build failure drops every
//! pending build — no shard ever publishes a batch another shard rejected.
//!
//! # Module map
//!
//! * [`plan`] — [`ShardPlan`]: contiguous paper ranges, update splitting,
//!   sub-instance construction.
//! * [`store`] — [`ShardedStore`]: lockstep apply, scatter-gather JRA,
//!   CRA with cross-shard capacity reconciliation.
//! * [`merge`] — gather kernels: top-k merging with the unsharded
//!   tie-break order, and the capacity-reconciliation pass.
//! * [`router`] — [`Router`]: the `wgrap serve --router` front-end that
//!   speaks NDJSON v1/v2 upstream and fans out to shard processes over
//!   TCP, degrading to structured `"shard_down"` errors when a downstream
//!   is unreachable.

pub mod merge;
pub mod plan;
pub mod router;
pub mod store;

pub use plan::ShardPlan;
pub use router::{serve_router_connection, serve_router_tcp, Router, RouterOptions};
pub use store::{ShardedCraAnswer, ShardedStore};
