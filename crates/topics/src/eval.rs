//! Topic-model quality evaluation: held-out perplexity.
//!
//! The paper treats topic extraction quality as orthogonal (§2.4, App. A),
//! but a reproduction needs a way to check that the Gibbs sampler actually
//! fits — perplexity on held-out documents is the standard instrument
//! (Rosen-Zvi et al. report it for the ATM).

use crate::atm::AtmModel;
use crate::corpus::Document;

/// Per-word log-likelihood of held-out documents under the fitted model:
/// each token's probability is averaged over the document's authors,
/// `p(w | d) = (1/|A_d|) Σ_{a∈A_d} Σ_t θ_a[t] φ_t[w]`.
///
/// Returns `None` for an empty document set (or all-empty documents).
pub fn heldout_log_likelihood(model: &AtmModel, docs: &[Document]) -> Option<f64> {
    let mut total = 0.0;
    let mut tokens = 0usize;
    for doc in docs {
        // Mixture over the document's authors.
        let author_mix: Vec<&Vec<f64>> =
            doc.authors.iter().map(|&a| &model.theta[a as usize]).collect();
        for &w in &doc.words {
            let mut p = 0.0;
            for theta in &author_mix {
                for (t, phi_t) in model.phi.iter().enumerate() {
                    p += theta[t] * phi_t[w as usize];
                }
            }
            p /= author_mix.len() as f64;
            if p <= 0.0 {
                // Smoothed estimates keep full support, so this indicates a
                // word id outside the training vocabulary: skip it.
                continue;
            }
            total += p.ln();
            tokens += 1;
        }
    }
    if tokens == 0 {
        return None;
    }
    Some(total / tokens as f64)
}

/// Held-out perplexity: `exp(−mean per-word log-likelihood)`. Lower is
/// better; a uniform model over a vocabulary of `V` words scores `V`.
pub fn perplexity(model: &AtmModel, docs: &[Document]) -> Option<f64> {
    heldout_log_likelihood(model, docs).map(|ll| (-ll).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atm::{fit, AtmOptions};
    use crate::corpus::Corpus;

    fn clustered_corpus(docs_per_author: usize) -> Corpus {
        let mut corpus = Corpus::new(8, 2);
        for i in 0..docs_per_author {
            let w0: Vec<u32> = (0..40).map(|j| ((i + j) % 4) as u32).collect();
            let w1: Vec<u32> = (0..40).map(|j| (4 + (i + j) % 4) as u32).collect();
            corpus.push(Document::new(w0, vec![0]));
            corpus.push(Document::new(w1, vec![1]));
        }
        corpus
    }

    #[test]
    fn fitted_model_beats_uniform_baseline() {
        let train = clustered_corpus(15);
        let test = clustered_corpus(3);
        let model = fit(
            &train,
            &AtmOptions { num_topics: 2, iterations: 80, seed: 5, ..Default::default() },
        );
        let ppl = perplexity(&model, &test.docs).unwrap();
        // A structure-blind model scores ~V = 8 (or ~4 knowing each author
        // uses only half the vocabulary); the fitted model must beat 8 and
        // approach 4.
        assert!(ppl < 6.0, "perplexity {ppl}");
        assert!(ppl >= 3.5, "perplexity {ppl} suspiciously below the entropy floor");
    }

    #[test]
    fn more_training_does_not_hurt() {
        let test = clustered_corpus(3);
        let small = fit(
            &clustered_corpus(2),
            &AtmOptions { num_topics: 2, iterations: 60, seed: 1, ..Default::default() },
        );
        let large = fit(
            &clustered_corpus(20),
            &AtmOptions { num_topics: 2, iterations: 60, seed: 1, ..Default::default() },
        );
        let p_small = perplexity(&small, &test.docs).unwrap();
        let p_large = perplexity(&large, &test.docs).unwrap();
        assert!(p_large <= p_small + 0.5, "small {p_small} vs large {p_large}");
    }

    #[test]
    fn empty_input_is_none() {
        let model = fit(
            &clustered_corpus(2),
            &AtmOptions { num_topics: 2, iterations: 10, ..Default::default() },
        );
        assert!(perplexity(&model, &[]).is_none());
    }
}
