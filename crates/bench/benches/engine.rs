//! Old-vs-new scoring path: the ScoreEngine's flat SoA + CSR kernels against
//! the seed's boxed-`TopicVector` path, on the two hot kernels every solver
//! shares — the dense P×R pair-score matrix build and one SDGA stage
//! cost-matrix build (all marginal gains, groups one reviewer deep).
//!
//! P=500, R=1000, T=100 with topic-model-shaped papers (mass concentrated
//! on a few topics, as ATM inference produces): the acceptance bar for the
//! engine is ≥2× on the stage-matrix build, single-threaded.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use wgrap_core::engine::{GainProvider, GainTable, LegacyGains, PairMatrix, ScoreContext};
use wgrap_core::prelude::{Instance, Scoring, TopicVector};

const P: usize = 500;
const R: usize = 1000;
const T: usize = 100;
/// Non-zero topics per paper (topic-model posteriors concentrate mass).
const PAPER_NNZ: usize = 8;

fn bench_instance() -> Instance {
    let mut rng = StdRng::seed_from_u64(42);
    let papers: Vec<TopicVector> = (0..P)
        .map(|_| {
            let entries: Vec<(usize, f64)> = (0..PAPER_NNZ)
                .map(|_| (rng.random_range(0..T), rng.random::<f64>().max(1e-3)))
                .collect();
            TopicVector::from_sparse(T, &entries).normalized()
        })
        .collect();
    let reviewers: Vec<TopicVector> = (0..R)
        .map(|_| {
            let raw: Vec<f64> = (0..T).map(|_| rng.random::<f64>().powi(3)).collect();
            TopicVector::new(raw).normalized()
        })
        .collect();
    let delta_p = 3;
    let delta_r = Instance::minimal_delta_r(P, R, delta_p);
    Instance::new(papers, reviewers, delta_p, delta_r).expect("valid bench instance")
}

/// One stage-matrix build: every paper's marginal-gain row over all
/// reviewers, exactly the kernel `solve_stage` runs per SDGA stage.
fn build_stage_rows<G: GainProvider>(gains: &G, row: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for p in 0..gains.num_papers() {
        gains.gains_into(p, row);
        acc += row[0] + row[R - 1];
    }
    acc
}

fn bench_pair_matrix(c: &mut Criterion) {
    let inst = bench_instance();
    let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
    let mut group = c.benchmark_group("pair_matrix_p500_r1000_t100");
    group.sample_size(10);
    group.bench_function("legacy_boxed", |b| {
        b.iter(|| black_box(PairMatrix::from_instance(&inst, Scoring::WeightedCoverage)))
    });
    group.bench_function("engine_flat_csr", |b| b.iter(|| black_box(ctx.build_pair_matrix())));
    group.finish();
}

fn bench_stage_matrix(c: &mut Criterion) {
    let inst = bench_instance();
    let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);

    // Stage 2 of SDGA: each paper's group already holds one reviewer.
    let mut legacy = LegacyGains::new(&inst, Scoring::WeightedCoverage);
    let mut engine = GainTable::new(&ctx);
    for p in 0..P {
        legacy.add(p, p % R);
        engine.add(p, p % R);
    }

    // The two paths must agree bit-for-bit before we time them.
    let mut lrow = vec![0.0; R];
    let mut erow = vec![0.0; R];
    for p in [0, P / 2, P - 1] {
        legacy.gains_into(p, &mut lrow);
        engine.gains_into(p, &mut erow);
        assert!(
            lrow.iter().zip(&erow).all(|(a, b)| a.to_bits() == b.to_bits()),
            "engine and legacy stage rows diverged at paper {p}"
        );
    }

    let mut group = c.benchmark_group("sdga_stage_matrix_p500_r1000_t100");
    group.sample_size(10);
    group.bench_function("legacy_boxed", |b| {
        let mut row = vec![0.0; R];
        b.iter(|| black_box(build_stage_rows(&legacy, &mut row)))
    });
    group.bench_function("engine_flat_csr", |b| {
        let mut row = vec![0.0; R];
        b.iter(|| black_box(build_stage_rows(&engine, &mut row)))
    });
    group.finish();
}

criterion_group!(benches, bench_pair_matrix, bench_stage_matrix);
criterion_main!(benches);
