//! Deterministic parallelism for engine kernels, feature-gated on `rayon`.
//!
//! Engine kernels fan out over *papers* (pair-score rows, stage cost-matrix
//! rows, SRA trials). Each unit is a pure function of its index writing to a
//! distinct output slot, and reduction is positional — so results are
//! bit-identical with the feature on or off, across any thread count. With
//! the feature disabled the helpers degrade to plain serial maps and the
//! crate has no threading dependency at all.

/// Parallel (or serial) `(0..n).map(f).collect()`, output in index order.
#[cfg(feature = "rayon")]
pub fn map_indexed<U: Send, F: Fn(usize) -> U + Sync>(n: usize, f: F) -> Vec<U> {
    wgrap_par::par_map_indexed(n, f)
}

/// Parallel (or serial) `(0..n).map(f).collect()`, output in index order.
#[cfg(not(feature = "rayon"))]
pub fn map_indexed<U, F: Fn(usize) -> U>(n: usize, f: F) -> Vec<U> {
    (0..n).map(f).collect()
}

/// Is the parallel substrate compiled in?
pub fn is_parallel() -> bool {
    cfg!(feature = "rayon")
}
