//! The full §2.4 pipeline: publication corpus → ATM (reviewer vectors) →
//! EM folding-in (paper vectors) → a WGRAP [`Instance`].

use crate::areas::DatasetSpec;
use crate::corpus::{generate, CorpusConfig, SyntheticCorpus};
use wgrap_core::prelude::{Instance, TopicVector};
use wgrap_topics::atm::{fit, AtmOptions};
use wgrap_topics::em::infer_document;

/// Settings for [`corpus_to_instance`].
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Corpus generator settings.
    pub corpus: CorpusConfig,
    /// ATM sampler settings (topic count should match the corpus config).
    pub atm: AtmOptions,
    /// EM iterations for paper folding-in.
    pub em_iters: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let corpus = CorpusConfig::default();
        let atm = AtmOptions { num_topics: corpus.num_topics, ..Default::default() };
        Self { corpus, atm, em_iters: 100 }
    }
}

/// Run the whole extraction pipeline on a synthetic corpus and assemble the
/// assignment instance at group size `delta_p` and minimal workload.
///
/// Returns the instance together with the generated corpus (so callers can
/// compare recovered vectors against ground truth, or print topic keywords
/// for the case studies).
pub fn corpus_to_instance(
    spec: &DatasetSpec,
    cfg: &PipelineConfig,
    delta_p: usize,
    seed: u64,
) -> (Instance, SyntheticCorpus) {
    assert_eq!(cfg.corpus.num_topics, cfg.atm.num_topics, "corpus and ATM topic counts must match");
    let sc = generate(spec, &cfg.corpus, seed);
    let atm_opts = AtmOptions { seed, ..cfg.atm.clone() };
    let model = fit(&sc.publications, &atm_opts);

    let reviewers: Vec<TopicVector> =
        model.theta.iter().map(|row| TopicVector::new(row.clone()).normalized()).collect();
    let papers: Vec<TopicVector> = sc
        .submissions
        .iter()
        .map(|words| {
            TopicVector::new(infer_document(&model.phi, words, cfg.em_iters, 1e-8)).normalized()
        })
        .collect();

    let delta_r = Instance::minimal_delta_r(papers.len(), reviewers.len(), delta_p);
    let inst = Instance::new(papers, reviewers, delta_p, delta_r)
        .expect("pipeline output is structurally valid");
    (inst, sc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::areas::{Area, DatasetSpec};

    fn tiny() -> (DatasetSpec, PipelineConfig) {
        let spec = DatasetSpec {
            name: "TINY",
            area: Area::DataMining,
            year: 2008,
            num_papers: 6,
            num_reviewers: 5,
        };
        let corpus = CorpusConfig {
            vocab_size: 100,
            num_topics: 5,
            docs_per_author: (4, 6),
            words_per_doc: (40, 60),
            ..Default::default()
        };
        let atm = AtmOptions { num_topics: 5, iterations: 60, ..Default::default() };
        (spec, PipelineConfig { corpus, atm, em_iters: 60 })
    }

    #[test]
    fn produces_valid_instance() {
        let (spec, cfg) = tiny();
        let (inst, _) = corpus_to_instance(&spec, &cfg, 2, 5);
        assert_eq!(inst.num_papers(), 6);
        assert_eq!(inst.num_reviewers(), 5);
        assert_eq!(inst.num_topics(), 5);
        for v in inst.papers().iter().chain(inst.reviewers()) {
            assert!((v.total() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovered_similarity_correlates_with_truth() {
        // The ATM's topic ids are a permutation of the ground truth's, so we
        // compare through a permutation-invariant statistic: reviewer-
        // reviewer cosine similarity in true vs recovered space.
        let (spec, cfg) = tiny();
        let (inst, sc) = corpus_to_instance(&spec, &cfg, 2, 9);
        let cosine = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb)
        };
        let n = inst.num_reviewers();
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    // Does recovered space order (i,j) vs (i,k) like truth?
                    let t_ij = cosine(&sc.true_reviewer_theta[i], &sc.true_reviewer_theta[j]);
                    let t_ik = cosine(&sc.true_reviewer_theta[i], &sc.true_reviewer_theta[k]);
                    let r_ij = cosine(inst.reviewer(i).as_slice(), inst.reviewer(j).as_slice());
                    let r_ik = cosine(inst.reviewer(i).as_slice(), inst.reviewer(k).as_slice());
                    if (t_ij - t_ik).abs() > 0.2 {
                        total += 1;
                        if (t_ij > t_ik) == (r_ij > r_ik) {
                            agree += 1;
                        }
                    }
                }
            }
        }
        if total > 0 {
            let rate = agree as f64 / total as f64;
            assert!(rate > 0.6, "ordering agreement only {rate} ({agree}/{total})");
        }
    }
}
