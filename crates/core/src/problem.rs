//! WGRAP problem instances (paper §2.2, Definition 3).
//!
//! An instance bundles the paper and reviewer topic vectors with the two
//! workload constraints — group size `δp` (each paper gets exactly `δp`
//! reviewers) and reviewer workload `δr` (each reviewer takes at most `δr`
//! papers) — plus an optional set of conflict-of-interest pairs (§4.3).

use crate::error::{Error, Result};
use crate::topic::TopicVector;
use std::collections::HashSet;

/// A WGRAP instance: `P` papers, `R` reviewers, constraints, COIs.
#[derive(Debug, Clone)]
pub struct Instance {
    papers: Vec<TopicVector>,
    reviewers: Vec<TopicVector>,
    delta_p: usize,
    delta_r: usize,
    coi: HashSet<(u32, u32)>,
    paper_names: Option<Vec<String>>,
    reviewer_names: Option<Vec<String>>,
}

impl Instance {
    /// Build and validate an instance. Checks:
    ///
    /// * consistent topic dimension across all vectors,
    /// * `1 ≤ δp ≤ R`, `δr ≥ 1`,
    /// * capacity arithmetic `R·δr ≥ P·δp` (the paper's standing
    ///   assumption that there are enough reviewers).
    pub fn new(
        papers: Vec<TopicVector>,
        reviewers: Vec<TopicVector>,
        delta_p: usize,
        delta_r: usize,
    ) -> Result<Self> {
        let dim = reviewers.first().or(papers.first()).map(TopicVector::dim).unwrap_or(0);
        if papers.iter().chain(&reviewers).any(|v| v.dim() != dim) {
            return Err(Error::InvalidInstance(
                "all topic vectors must share one dimension".into(),
            ));
        }
        if reviewers.is_empty() {
            return Err(Error::InvalidInstance("no reviewers".into()));
        }
        if delta_p == 0 || delta_p > reviewers.len() {
            return Err(Error::InvalidInstance(format!(
                "need 1 <= delta_p <= R, got delta_p={} R={}",
                delta_p,
                reviewers.len()
            )));
        }
        if delta_r == 0 {
            return Err(Error::InvalidInstance("delta_r must be >= 1".into()));
        }
        if reviewers.len() * delta_r < papers.len() * delta_p {
            return Err(Error::InvalidInstance(format!(
                "capacity shortfall: R*delta_r = {} < P*delta_p = {}",
                reviewers.len() * delta_r,
                papers.len() * delta_p
            )));
        }
        Ok(Self {
            papers,
            reviewers,
            delta_p,
            delta_r,
            coi: HashSet::new(),
            paper_names: None,
            reviewer_names: None,
        })
    }

    /// Single-paper instance for Journal Reviewer Assignment (Definition 6);
    /// the reviewer workload is irrelevant and set to 1.
    pub fn journal(
        paper: TopicVector,
        reviewers: Vec<TopicVector>,
        delta_p: usize,
    ) -> Result<Self> {
        Self::new(vec![paper], reviewers, delta_p, 1)
    }

    /// The minimum workload that keeps the instance feasible,
    /// `δr = ⌈P·δp / R⌉` — the setting used throughout §5.2 ("the program
    /// chair would like to minimise the workload of each reviewer").
    pub fn minimal_delta_r(num_papers: usize, num_reviewers: usize, delta_p: usize) -> usize {
        (num_papers * delta_p).div_ceil(num_reviewers).max(1)
    }

    /// Declare `(reviewer, paper)` a conflict of interest.
    pub fn add_coi(&mut self, reviewer: usize, paper: usize) {
        assert!(reviewer < self.reviewers.len() && paper < self.papers.len());
        self.coi.insert((reviewer as u32, paper as u32));
    }

    /// Is `(reviewer, paper)` conflicted?
    #[inline]
    pub fn is_coi(&self, reviewer: usize, paper: usize) -> bool {
        !self.coi.is_empty() && self.coi.contains(&(reviewer as u32, paper as u32))
    }

    /// Every declared COI as `(reviewer, paper)` pairs, sorted — the
    /// canonical enumeration the durable-store checkpoint serializes
    /// (iteration order of the backing set is not deterministic).
    pub fn coi_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self.coi.iter().copied().collect();
        pairs.sort_unstable();
        pairs
    }

    /// The explicit paper display names, if any were attached. `None` means
    /// the `paper-{p}` defaults are synthesized on demand — checkpoints
    /// preserve the distinction so a recovered instance round-trips exactly.
    pub fn paper_names(&self) -> Option<&[String]> {
        self.paper_names.as_deref()
    }

    /// The explicit reviewer display names, if any were attached (see
    /// [`Instance::paper_names`]).
    pub fn reviewer_names(&self) -> Option<&[String]> {
        self.reviewer_names.as_deref()
    }

    /// Attach display names (used by case-study reporting).
    pub fn with_names(mut self, paper_names: Vec<String>, reviewer_names: Vec<String>) -> Self {
        assert_eq!(paper_names.len(), self.papers.len());
        assert_eq!(reviewer_names.len(), self.reviewers.len());
        self.paper_names = Some(paper_names);
        self.reviewer_names = Some(reviewer_names);
        self
    }

    /// Number of papers `P`.
    pub fn num_papers(&self) -> usize {
        self.papers.len()
    }

    /// Number of reviewers `R`.
    pub fn num_reviewers(&self) -> usize {
        self.reviewers.len()
    }

    /// Topic dimension `T`.
    pub fn num_topics(&self) -> usize {
        self.reviewers.first().map(TopicVector::dim).unwrap_or(0)
    }

    /// Group size constraint `δp`.
    pub fn delta_p(&self) -> usize {
        self.delta_p
    }

    /// Reviewer workload `δr`.
    pub fn delta_r(&self) -> usize {
        self.delta_r
    }

    /// Paper vectors.
    pub fn papers(&self) -> &[TopicVector] {
        &self.papers
    }

    /// Reviewer vectors.
    pub fn reviewers(&self) -> &[TopicVector] {
        &self.reviewers
    }

    /// Paper `p`'s vector.
    pub fn paper(&self, p: usize) -> &TopicVector {
        &self.papers[p]
    }

    /// Reviewer `r`'s vector.
    pub fn reviewer(&self, r: usize) -> &TopicVector {
        &self.reviewers[r]
    }

    /// Display name of paper `p`.
    pub fn paper_name(&self, p: usize) -> String {
        self.paper_names.as_ref().map(|n| n[p].clone()).unwrap_or_else(|| format!("paper-{p}"))
    }

    /// Display name of reviewer `r`.
    pub fn reviewer_name(&self, r: usize) -> String {
        self.reviewer_names
            .as_ref()
            .map(|n| n[r].clone())
            .unwrap_or_else(|| format!("reviewer-{r}"))
    }

    /// Replace the reviewer vectors (h-index scaling, Eq. 15). The new
    /// vectors must keep the same count and dimension.
    pub fn with_reviewers(mut self, reviewers: Vec<TopicVector>) -> Result<Self> {
        if reviewers.len() != self.reviewers.len()
            || reviewers.iter().any(|v| v.dim() != self.num_topics())
        {
            return Err(Error::InvalidInstance(
                "replacement reviewers must match count and dimension".into(),
            ));
        }
        self.reviewers = reviewers;
        Ok(self)
    }

    /// Append a paper, revalidating capacity (`R·δr ≥ (P+1)·δp`). Returns
    /// the new paper's index. If the instance carries display names, `name`
    /// (or the `paper-{p}` default) is appended alongside; the name is
    /// dropped on unnamed instances unless given explicitly.
    ///
    /// This is the instance-level half of an incremental
    /// [`AddPaper`-style update](crate::engine::ScoreContext::push_paper):
    /// it mutates only the paper list, so every derived view can extend
    /// itself without rebuilding.
    pub fn push_paper(&mut self, name: Option<String>, paper: TopicVector) -> Result<usize> {
        if paper.dim() != self.num_topics() {
            return Err(Error::InvalidInstance(format!(
                "paper dimension {} != instance dimension {}",
                paper.dim(),
                self.num_topics()
            )));
        }
        if self.reviewers.len() * self.delta_r < (self.papers.len() + 1) * self.delta_p {
            return Err(Error::InvalidInstance(format!(
                "capacity shortfall after adding a paper: R*delta_r = {} < (P+1)*delta_p = {}",
                self.reviewers.len() * self.delta_r,
                (self.papers.len() + 1) * self.delta_p
            )));
        }
        let p = self.papers.len();
        self.attach_name(false, name, p);
        self.papers.push(paper);
        Ok(p)
    }

    /// Append a reviewer (never a capacity problem — capacity only grows).
    /// Returns the new reviewer's index. Name handling as in
    /// [`Instance::push_paper`].
    pub fn push_reviewer(&mut self, name: Option<String>, reviewer: TopicVector) -> Result<usize> {
        if reviewer.dim() != self.num_topics() {
            return Err(Error::InvalidInstance(format!(
                "reviewer dimension {} != instance dimension {}",
                reviewer.dim(),
                self.num_topics()
            )));
        }
        let r = self.reviewers.len();
        self.attach_name(true, name, r);
        self.reviewers.push(reviewer);
        Ok(r)
    }

    /// Replace reviewer `r`'s expertise vector (same dimension required).
    /// Setting it to [`TopicVector::zeros`] retires the reviewer: every pair
    /// score becomes 0, so no solver will prefer them over any positive
    /// candidate.
    pub fn set_reviewer_vector(&mut self, r: usize, expertise: TopicVector) -> Result<()> {
        if r >= self.reviewers.len() {
            return Err(Error::InvalidInstance(format!(
                "reviewer {r} out of range (R = {})",
                self.reviewers.len()
            )));
        }
        if expertise.dim() != self.num_topics() {
            return Err(Error::InvalidInstance(format!(
                "reviewer dimension {} != instance dimension {}",
                expertise.dim(),
                self.num_topics()
            )));
        }
        self.reviewers[r] = expertise;
        Ok(())
    }

    /// Append a display name for the entity about to occupy index `idx`,
    /// materialising the default names first if an explicit name arrives on
    /// a so-far-unnamed side.
    fn attach_name(&mut self, reviewer_side: bool, name: Option<String>, idx: usize) {
        let default: fn(usize) -> String =
            if reviewer_side { |i| format!("reviewer-{i}") } else { |i| format!("paper-{i}") };
        let names = if reviewer_side { &mut self.reviewer_names } else { &mut self.paper_names };
        match (names.as_mut(), name) {
            (Some(ns), name) => ns.push(name.unwrap_or_else(|| default(idx))),
            (None, Some(name)) => {
                let mut ns: Vec<String> = (0..idx).map(default).collect();
                ns.push(name);
                *names = Some(ns);
            }
            (None, None) => {}
        }
    }

    /// Restrict to a different `(δp, δr)` pair, revalidating capacity.
    pub fn with_constraints(&self, delta_p: usize, delta_r: usize) -> Result<Self> {
        let mut inst = Self::new(self.papers.clone(), self.reviewers.clone(), delta_p, delta_r)?;
        inst.coi = self.coi.clone();
        inst.paper_names = self.paper_names.clone();
        inst.reviewer_names = self.reviewer_names.clone();
        Ok(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(v: &[f64]) -> TopicVector {
        TopicVector::new(v.to_vec())
    }

    fn tiny() -> Instance {
        Instance::new(
            vec![tv(&[0.5, 0.5]), tv(&[1.0, 0.0])],
            vec![tv(&[0.3, 0.7]), tv(&[0.6, 0.4]), tv(&[0.9, 0.1])],
            2,
            2,
        )
        .unwrap()
    }

    #[test]
    fn valid_instance_accepted() {
        let inst = tiny();
        assert_eq!(inst.num_papers(), 2);
        assert_eq!(inst.num_reviewers(), 3);
        assert_eq!(inst.num_topics(), 2);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let e = Instance::new(vec![tv(&[1.0])], vec![tv(&[0.5, 0.5])], 1, 1);
        assert!(matches!(e, Err(Error::InvalidInstance(_))));
    }

    #[test]
    fn capacity_shortfall_rejected() {
        // 2 papers x delta_p 2 = 4 > 3 reviewers x delta_r 1.
        let e = Instance::new(
            vec![tv(&[1.0]), tv(&[1.0])],
            vec![tv(&[1.0]), tv(&[1.0]), tv(&[1.0])],
            2,
            1,
        );
        assert!(matches!(e, Err(Error::InvalidInstance(_))));
    }

    #[test]
    fn delta_p_bounds() {
        assert!(Instance::new(vec![tv(&[1.0])], vec![tv(&[1.0])], 2, 9).is_err());
        assert!(Instance::new(vec![tv(&[1.0])], vec![tv(&[1.0])], 0, 1).is_err());
    }

    #[test]
    fn minimal_delta_r_formula() {
        // 617 papers, 105 reviewers, delta_p = 3 -> ceil(1851/105) = 18.
        assert_eq!(Instance::minimal_delta_r(617, 105, 3), 18);
        assert_eq!(Instance::minimal_delta_r(10, 100, 3), 1);
        assert_eq!(Instance::minimal_delta_r(0, 5, 3), 1);
    }

    #[test]
    fn coi_membership() {
        let mut inst = tiny();
        assert!(!inst.is_coi(0, 1));
        inst.add_coi(0, 1);
        assert!(inst.is_coi(0, 1));
        assert!(!inst.is_coi(1, 0));
    }

    #[test]
    fn journal_constructor() {
        let inst =
            Instance::journal(tv(&[0.5, 0.5]), vec![tv(&[1.0, 0.0]), tv(&[0.0, 1.0])], 2).unwrap();
        assert_eq!(inst.num_papers(), 1);
        assert_eq!(inst.delta_p(), 2);
    }

    #[test]
    fn names_roundtrip() {
        let inst = tiny()
            .with_names(vec!["p0".into(), "p1".into()], vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(inst.paper_name(1), "p1");
        assert_eq!(inst.reviewer_name(2), "c");
        let unnamed = tiny();
        assert_eq!(unnamed.paper_name(0), "paper-0");
    }

    #[test]
    fn push_paper_validates_and_names() {
        let mut inst = tiny(); // P=2, R=3, delta_p=2, delta_r=2 -> max 3 papers
        let p = inst.push_paper(Some("p-new".into()), tv(&[0.1, 0.9])).unwrap();
        assert_eq!(p, 2);
        assert_eq!(inst.num_papers(), 3);
        // Explicit name on an unnamed instance materialises defaults.
        assert_eq!(inst.paper_name(0), "paper-0");
        assert_eq!(inst.paper_name(2), "p-new");
        // Capacity is now exhausted (3*2 = 3*2).
        assert!(inst.push_paper(None, tv(&[1.0, 0.0])).is_err());
        // Dimension mismatch rejected.
        assert!(inst.push_reviewer(None, tv(&[1.0])).is_err());
    }

    #[test]
    fn push_and_patch_reviewer() {
        let mut inst = tiny();
        let r = inst.push_reviewer(None, tv(&[0.5, 0.5])).unwrap();
        assert_eq!(r, 3);
        assert_eq!(inst.num_reviewers(), 4);
        inst.set_reviewer_vector(3, tv(&[0.0, 0.0])).unwrap();
        assert_eq!(inst.reviewer(3).total(), 0.0);
        assert!(inst.set_reviewer_vector(9, tv(&[0.5, 0.5])).is_err());
        assert!(inst.set_reviewer_vector(0, tv(&[0.5])).is_err());
    }

    #[test]
    fn with_constraints_revalidates() {
        let inst = tiny();
        assert!(inst.with_constraints(3, 1).is_err()); // 2*3 > 3*1
        let ok = inst.with_constraints(1, 1).unwrap();
        assert_eq!(ok.delta_p(), 1);
    }
}
