//! Property tests: the Hungarian and flow backends are exact on anything
//! the brute-force oracle can check, and agree with each other.

use proptest::prelude::*;
use wgrap_lap::brute::brute_force_max;
use wgrap_lap::{hungarian_max, CapacitatedAssignment, CostMatrix, SparseMatrix};

fn square_matrix(max_n: usize) -> impl Strategy<Value = CostMatrix> {
    (1..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0.0..10.0f64, n * n)
            .prop_map(move |data| CostMatrix::from_fn(n, n, |r, c| data[r * n + c]))
    })
}

proptest! {
    #[test]
    fn hungarian_matches_brute_force(m in square_matrix(6)) {
        let hung = hungarian_max(&m).expect("finite matrix is feasible");
        let (bf, _) = brute_force_max(&m).expect("finite matrix is feasible");
        prop_assert!((hung.objective - bf).abs() < 1e-9);
    }

    #[test]
    fn flow_matches_hungarian_on_unit_caps(m in square_matrix(6)) {
        let caps = vec![1i64; m.cols()];
        let flow = CapacitatedAssignment::new(&m, &caps).solve();
        let hung = hungarian_max(&m).expect("feasible");
        prop_assert!((flow.objective - hung.objective).abs() < 1e-6);
    }

    #[test]
    fn matching_is_injective(m in square_matrix(7)) {
        let sol = hungarian_max(&m).expect("feasible");
        let mut seen = vec![false; m.cols()];
        for (_, c) in sol.pairs() {
            prop_assert!(!seen[c], "column matched twice");
            seen[c] = true;
        }
    }

    #[test]
    fn forbidding_the_chosen_edges_never_improves(m in square_matrix(5)) {
        let base = hungarian_max(&m).expect("feasible");
        // Forbid the first matched edge and re-solve: objective can't rise.
        let first = base.pairs().next();
        if let Some((r, c)) = first {
            let mut degraded = m.clone();
            degraded.set(r, c, f64::NEG_INFINITY);
            if let Some(sol) = hungarian_max(&degraded) {
                prop_assert!(sol.objective <= base.objective + 1e-9);
            }
        }
    }

    /// The sparse edge-list solver is the dense capacitated solver: with the
    /// full edge set it reproduces the dense flow assignment exactly, and
    /// with a random sparsity pattern it matches the dense matrix that has
    /// `NEG_INFINITY` in the absent cells.
    #[test]
    fn sparse_flow_equals_dense_flow(
        m in square_matrix(6),
        keep in proptest::collection::vec(any::<bool>(), 36),
        cap in 1i64..3,
    ) {
        let (r, c) = (m.rows(), m.cols());
        let caps = vec![cap; c];

        // Full density: bit-identical assignment.
        let full_rows: Vec<Vec<(u32, f64)>> = (0..r)
            .map(|i| (0..c).map(|j| (j as u32, m.get(i, j))).collect())
            .collect();
        let full = SparseMatrix::from_rows(c, full_rows);
        let dense = CapacitatedAssignment::new(&m, &caps).solve();
        let sparse = full.solve_capacitated(&caps);
        prop_assert_eq!(&sparse.row_to_col, &dense.row_to_col);
        prop_assert_eq!(sparse.objective.to_bits(), dense.objective.to_bits());

        // Random pattern: equals the dense solve over the masked matrix.
        let masked = CostMatrix::from_fn(r, c, |i, j| {
            if keep[(i * c + j) % keep.len()] { m.get(i, j) } else { f64::NEG_INFINITY }
        });
        let masked_rows: Vec<Vec<(u32, f64)>> = (0..r)
            .map(|i| {
                (0..c)
                    .filter(|&j| masked.get(i, j) != f64::NEG_INFINITY)
                    .map(|j| (j as u32, masked.get(i, j)))
                    .collect()
            })
            .collect();
        let sp = SparseMatrix::from_rows(c, masked_rows);
        let a = sp.solve_capacitated(&caps);
        let b = CapacitatedAssignment::new(&masked, &caps).solve();
        prop_assert_eq!(&a.row_to_col, &b.row_to_col);
        prop_assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn capacitated_objective_matches_reported_pairs(
        m in square_matrix(5),
        cap in 1i64..3,
    ) {
        let caps = vec![cap; m.cols()];
        let sol = CapacitatedAssignment::new(&m, &caps).solve();
        // Reported objective equals the sum over reported pairs, and no
        // column exceeds its capacity.
        let mut total = 0.0;
        let mut used = vec![0i64; m.cols()];
        for (r, c) in sol.pairs() {
            total += m.get(r, c);
            used[c] += 1;
        }
        prop_assert!((total - sol.objective).abs() < 1e-9);
        for (u, &cap) in used.iter().zip(&caps) {
            prop_assert!(*u <= cap);
        }
    }
}
