//! Stage partitioning of an assignment (paper §4.3.1).
//!
//! The approximation proof splits the optimal assignment `O` into `δp`
//! disjoint slices `O_1 … O_δp` such that every slice is a valid
//! Stage-WGRAP assignment (Eq. 6): one reviewer per paper per slice, at most
//! `⌈δr/δp⌉` papers per reviewer per slice. The paper sketches an `O(|O|²)`
//! nested-loop swap construction; we implement the split *provably* via
//! König edge coloring instead, because pairwise swaps can deadlock:
//!
//! 1. View the assignment as a bipartite multigraph papers × reviewers
//!    (paper degree exactly `δp`, reviewer degree ≤ `δr`).
//! 2. Split each reviewer into clones of degree ≤ `δp` (so a reviewer has at
//!    most `⌈δr/δp⌉` clones).
//! 3. König: a bipartite multigraph of maximum degree `δp` is
//!    `δp`-edge-colorable; each color class then assigns exactly one
//!    reviewer per paper and at most `⌈δr/δp⌉` papers per original reviewer
//!    — precisely Eq. 6.
//!
//! Tests use this to certify that the split of Lemma 3 exists for the
//! outputs of every algorithm in this crate.

use crate::assignment::Assignment;
use crate::error::{Error, Result};
use crate::problem::Instance;

/// Split a complete assignment into `δp` stage slices satisfying Eq. 6.
///
/// Returns `slices[s][p] = reviewer of paper p in stage s`.
pub fn split_into_stages(inst: &Instance, a: &Assignment) -> Result<Vec<Vec<usize>>> {
    a.validate(inst)?;
    let num_p = inst.num_papers();
    let delta_p = inst.delta_p();
    let cap = inst.delta_r().div_ceil(delta_p);
    if num_p == 0 {
        return Ok(vec![Vec::new(); delta_p]);
    }

    // Build edges and reviewer clones. Edge i of reviewer r goes to clone
    // r_(i / δp), keeping clone degrees ≤ δp.
    struct Edge {
        paper: usize,
        clone: usize,
        reviewer: usize,
    }
    let mut reviewer_edge_count = vec![0usize; inst.num_reviewers()];
    let mut clone_of: Vec<Vec<usize>> = vec![Vec::new(); inst.num_reviewers()];
    let mut num_clones = 0usize;
    let mut edges = Vec::with_capacity(num_p * delta_p);
    for p in 0..num_p {
        for &r in a.group(p) {
            let i = reviewer_edge_count[r];
            reviewer_edge_count[r] += 1;
            let chunk = i / delta_p;
            if chunk == clone_of[r].len() {
                clone_of[r].push(num_clones);
                num_clones += 1;
            }
            edges.push(Edge { paper: p, clone: clone_of[r][chunk], reviewer: r });
        }
    }

    // König coloring with Kempe-chain flips. Node ids: papers then clones.
    let num_nodes = num_p + num_clones;
    // color_at[node][c] = edge id carrying color c at `node`, or NONE.
    const NONE: u32 = u32::MAX;
    let mut color_at = vec![NONE; num_nodes * delta_p];
    let mut edge_color = vec![usize::MAX; edges.len()];
    let node_of = |e: &Edge, side: bool| if side { e.paper } else { num_p + e.clone };

    for eid in 0..edges.len() {
        let u = node_of(&edges[eid], true);
        let v = node_of(&edges[eid], false);
        let free = |node: usize, color_at: &[u32]| -> usize {
            (0..delta_p)
                .find(|&c| color_at[node * delta_p + c] == NONE)
                .expect("degree <= delta_p guarantees a free color")
        };
        let ca = free(u, &color_at);
        let cb = free(v, &color_at);
        let color = if ca == cb {
            ca
        } else {
            // Flip the (ca, cb)-alternating chain starting at v; it cannot
            // reach u (an odd-length path would end in a ca-edge, which u
            // lacks), so afterwards ca is free at both endpoints. Collect
            // the chain first, then recolor in two phases so table slots
            // are not clobbered mid-walk.
            let mut chain: Vec<u32> = Vec::new();
            let mut node = v;
            let mut want = ca;
            loop {
                let next_edge = color_at[node * delta_p + want];
                if next_edge == NONE {
                    break;
                }
                chain.push(next_edge);
                let e = &edges[next_edge as usize];
                node = if node_of(e, true) == node { node_of(e, false) } else { node_of(e, true) };
                want = if want == ca { cb } else { ca };
            }
            for &ce in &chain {
                let e = &edges[ce as usize];
                let c_old = edge_color[ce as usize];
                color_at[node_of(e, true) * delta_p + c_old] = NONE;
                color_at[node_of(e, false) * delta_p + c_old] = NONE;
            }
            for &ce in &chain {
                let e = &edges[ce as usize];
                let c_new = if edge_color[ce as usize] == ca { cb } else { ca };
                edge_color[ce as usize] = c_new;
                color_at[node_of(e, true) * delta_p + c_new] = ce;
                color_at[node_of(e, false) * delta_p + c_new] = ce;
            }
            ca
        };
        edge_color[eid] = color;
        color_at[u * delta_p + color] = eid as u32;
        color_at[v * delta_p + color] = eid as u32;
    }

    let mut slices: Vec<Vec<usize>> = vec![vec![usize::MAX; num_p]; delta_p];
    for (eid, e) in edges.iter().enumerate() {
        let c = edge_color[eid];
        debug_assert!(slices[c][e.paper] == usize::MAX, "paper got two stage-{c} reviewers");
        slices[c][e.paper] = e.reviewer;
    }

    // Certify Eq. 6 before returning.
    for (s, slice) in slices.iter().enumerate() {
        if slice.contains(&usize::MAX) {
            return Err(Error::Infeasible(format!("slice {s} left a paper unassigned")));
        }
        let mut loads = vec![0usize; inst.num_reviewers()];
        for &r in slice {
            loads[r] += 1;
        }
        if loads.iter().any(|&x| x > cap) {
            return Err(Error::Infeasible(format!(
                "stage partition failed to satisfy Eq. 6 at slice {s}"
            )));
        }
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;
    use crate::cra::{greedy, sdga, stable_matching};
    use crate::score::Scoring;

    fn check_partition(inst: &Instance, a: &Assignment, slices: &[Vec<usize>]) {
        let cap = inst.delta_r().div_ceil(inst.delta_p());
        assert_eq!(slices.len(), inst.delta_p());
        for p in 0..inst.num_papers() {
            // The slices repartition exactly the original group.
            let mut from_slices: Vec<usize> = slices.iter().map(|s| s[p]).collect();
            let mut original = a.group(p).to_vec();
            from_slices.sort_unstable();
            original.sort_unstable();
            assert_eq!(from_slices, original, "paper {p} group changed");
        }
        for slice in slices {
            let mut loads = vec![0usize; inst.num_reviewers()];
            for &r in slice {
                loads[r] += 1;
            }
            assert!(loads.iter().all(|&l| l <= cap), "Eq. 6 violated");
        }
    }

    #[test]
    fn partitions_every_algorithms_output() {
        for seed in 0..8 {
            let inst = random_instance(9, 6, 4, 3, seed);
            for a in [
                sdga::solve(&inst, Scoring::WeightedCoverage).unwrap(),
                greedy::solve(&inst, Scoring::WeightedCoverage).unwrap(),
                stable_matching::solve(&inst, Scoring::WeightedCoverage).unwrap(),
            ] {
                let slices = split_into_stages(&inst, &a).unwrap();
                check_partition(&inst, &a, &slices);
            }
        }
    }

    #[test]
    fn partitions_tight_instances() {
        // delta_r exactly divisible and saturated: cap = delta_r / delta_p.
        for seed in 0..4 {
            let inst = random_instance(8, 4, 4, 2, 40 + seed); // delta_r = 4
            let a = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
            let slices = split_into_stages(&inst, &a).unwrap();
            check_partition(&inst, &a, &slices);
        }
    }

    #[test]
    fn partitions_larger_instances() {
        for delta_p in [2usize, 3, 5] {
            let inst = random_instance(40, 11, 5, delta_p, 90 + delta_p as u64);
            let a = greedy::solve(&inst, Scoring::WeightedCoverage).unwrap();
            let slices = split_into_stages(&inst, &a).unwrap();
            check_partition(&inst, &a, &slices);
        }
    }

    #[test]
    fn rejects_invalid_assignment() {
        let inst = random_instance(4, 4, 3, 2, 1);
        let a = Assignment::from_groups(vec![vec![0]; 4]); // wrong group size
        assert!(split_into_stages(&inst, &a).is_err());
    }

    #[test]
    fn single_stage_is_identity() {
        let inst = random_instance(5, 5, 3, 1, 2);
        let a = sdga::solve(&inst, Scoring::WeightedCoverage).unwrap();
        let slices = split_into_stages(&inst, &a).unwrap();
        assert_eq!(slices.len(), 1);
        for p in 0..5 {
            assert_eq!(slices[0][p], a.group(p)[0]);
        }
    }
}
