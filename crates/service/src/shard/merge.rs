//! Gather kernels for the scatter side of sharded execution: merging
//! per-shard top-k result lists in the unsharded tie-break order, and the
//! cross-shard capacity-reconciliation pass CRA needs because per-shard
//! solves only see their own slice of each reviewer's load.

use crate::{Error, Result};
use wgrap_core::jra::JraResult;

/// Merge per-shard top-k result lists (each already sorted the way
/// [`bba`](wgrap_core::jra::bba)'s bounded heap emits them: descending
/// score under `total_cmp`) into one global top-k.
///
/// Tie-breaking is **bit-identical to the unsharded path**: the merge is
/// exactly a stable descending sort of the concatenation in part order,
/// which is the order `TopK::into_sorted` produces when one heap sees the
/// same groups in that sequence — equal-scored groups keep their
/// earlier-part-first order, and scores are compared with `total_cmp`, so
/// `-0.0`/`0.0` and NaN payloads order the same way they do inside the
/// solver's heap.
pub fn merge_top_k(parts: &[Vec<JraResult>], k: usize) -> Vec<JraResult> {
    let mut all: Vec<&JraResult> = parts.iter().flatten().collect();
    all.sort_by(|a, b| b.score.total_cmp(&a.score));
    all.into_iter().take(k).cloned().collect()
}

/// Rebalance reviewer load after per-shard CRA solves: each shard
/// enforced `δr` against its own papers only, so a reviewer popular on
/// several shards can exceed `δr` globally. The pass walks overloaded
/// reviewers in ascending id order and, for each, strips assignments from
/// their highest-numbered papers first, asking `replace` for the best
/// substitute reviewer — a `δp = 1` JRA solve on the paper's owning shard
/// with the paper's current group and every at-capacity reviewer
/// excluded, so the substitute is non-conflicted, distinct, and has spare
/// capacity by construction.
///
/// `groups[p]` is global paper `p`'s reviewer group (global reviewer
/// ids); it is patched in place. Returns the number of swaps performed.
/// Deterministic given a deterministic `replace`. When a paper has no
/// eligible substitute (its group plus the at-capacity reviewers plus its
/// COIs cover the pool — common on exactly-at-capacity instances), the
/// pass falls through to the next paper holding the overloaded reviewer,
/// and only fails with the oracle's error (typically `Infeasible`) once
/// every such paper is stuck.
pub fn reconcile_capacity(
    groups: &mut [Vec<usize>],
    num_reviewers: usize,
    delta_r: usize,
    mut replace: impl FnMut(usize, &[u32]) -> Result<usize>,
) -> Result<u64> {
    let mut loads = vec![0usize; num_reviewers];
    for group in groups.iter() {
        for &r in group {
            if r >= num_reviewers {
                return Err(Error::InvalidInstance(format!(
                    "assignment references unknown reviewer {r} (R = {num_reviewers})"
                )));
            }
            loads[r] += 1;
        }
    }
    let mut swaps = 0u64;
    for r in 0..num_reviewers {
        while loads[r] > delta_r {
            // Papers still assigned to r, newest first — a deterministic
            // order that needs no score state. Try each until one yields a
            // substitute; excluding every at-capacity reviewer guarantees
            // the swap never creates a new overload.
            let mut outcome: Result<(usize, usize)> =
                Err(Error::Infeasible(format!("an overloaded reviewer {r} appears in no group")));
            for p in (0..groups.len()).rev().filter(|&p| groups[p].contains(&r)) {
                let mut exclude: Vec<u32> = groups[p].iter().map(|&x| x as u32).collect();
                exclude
                    .extend((0..num_reviewers).filter(|&x| loads[x] >= delta_r).map(|x| x as u32));
                exclude.sort_unstable();
                exclude.dedup();
                match replace(p, &exclude) {
                    Ok(substitute) => {
                        outcome = Ok((p, substitute));
                        break;
                    }
                    Err(e) => outcome = Err(e),
                }
            }
            let (p, substitute) = outcome?;
            let group = &mut groups[p];
            group.retain(|&x| x != r);
            group.push(substitute);
            group.sort_unstable();
            loads[r] -= 1;
            loads[substitute] += 1;
            swaps += 1;
        }
    }
    Ok(swaps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(score: f64, group: &[usize]) -> JraResult {
        JraResult { group: group.to_vec(), score, nodes: 1 }
    }

    #[test]
    fn merge_matches_stable_concat_sort() {
        let parts = vec![
            vec![res(0.9, &[0]), res(0.5, &[1])],
            vec![res(0.9, &[2]), res(0.7, &[3]), res(0.1, &[4])],
            vec![res(0.5, &[5])],
        ];
        let merged = merge_top_k(&parts, 4);
        // Equal scores keep part order: [0] before [2], [1] before [5].
        let groups: Vec<&[usize]> = merged.iter().map(|r| r.group.as_slice()).collect();
        assert_eq!(groups, vec![&[0][..], &[2], &[3], &[1]]);
        assert_eq!(merge_top_k(&parts, 0).len(), 0);
        assert_eq!(merge_top_k(&parts, 99).len(), 6);
    }

    #[test]
    fn reconcile_moves_overload_to_spare_capacity() {
        // Reviewer 0 is on every paper; delta_r = 1. The oracle hands out
        // the lowest non-excluded reviewer.
        let mut groups = vec![vec![0, 1], vec![0, 2], vec![0, 3]];
        let swaps = reconcile_capacity(&mut groups, 6, 1, |_p, exclude| {
            (0..6usize)
                .find(|&x| !exclude.contains(&(x as u32)))
                .ok_or_else(|| Error::Infeasible("no substitute".into()))
        })
        .unwrap();
        assert_eq!(swaps, 2);
        let mut loads = vec![0usize; 6];
        for g in &groups {
            assert_eq!(g.len(), 2);
            for &r in g {
                loads[r] += 1;
            }
        }
        assert!(loads.iter().all(|&l| l <= 1), "loads {loads:?}");
        // Highest-numbered papers were stripped first, so paper 0 kept
        // reviewer 0.
        assert!(groups[0].contains(&0));
        assert!(!groups[2].contains(&0));
    }

    #[test]
    fn reconcile_noop_when_within_capacity() {
        let mut groups = vec![vec![0, 1], vec![2, 3]];
        let before = groups.clone();
        let swaps =
            reconcile_capacity(&mut groups, 4, 1, |_p, _ex| panic!("oracle must not be consulted"))
                .unwrap();
        assert_eq!(swaps, 0);
        assert_eq!(groups, before);
    }

    #[test]
    fn reconcile_propagates_oracle_failure() {
        let mut groups = vec![vec![0], vec![0]];
        let err = reconcile_capacity(&mut groups, 1, 1, |_p, _ex| {
            Err(Error::Infeasible("everyone excluded".into()))
        });
        assert!(matches!(err, Err(Error::Infeasible(_))));
    }
}
