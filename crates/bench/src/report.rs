//! Machine-readable benchmark results: `BENCH_<name>.json` at the
//! workspace root, so the perf trajectory is tracked across PRs instead of
//! living only in scrollback.
//!
//! Each record is `{name, params, samples, median_ns, throughput_per_s?}`:
//! the median is computed here over however many timing samples the bench
//! took (expensive kernels report a single sample — the `samples` field
//! says so). The file is rewritten wholesale on every bench run; diffing
//! two commits' files is the intended workflow.

use std::path::PathBuf;
use std::time::Duration;
use wgrap_service::json::Json;

/// Accumulates records for one bench binary and writes them as
/// `BENCH_<name>.json` at the workspace root.
#[derive(Debug)]
pub struct BenchReport {
    bench: &'static str,
    records: Vec<Json>,
}

impl BenchReport {
    /// A report for the bench binary `bench` (the file name suffix).
    pub fn new(bench: &'static str) -> Self {
        Self { bench, records: Vec::new() }
    }

    /// Record one measurement. `params` are the workload knobs (sizes,
    /// batch widths, k); `samples` are raw wall-clock timings (must be
    /// non-empty — the median is taken here); `throughput` is an optional
    /// items-per-second figure for rate-style measurements.
    pub fn record(
        &mut self,
        name: &str,
        params: &[(&'static str, f64)],
        samples: &[Duration],
        throughput: Option<f64>,
    ) {
        assert!(!samples.is_empty(), "record '{name}' needs at least one sample");
        let mut sorted = samples.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let mut members = vec![
            ("name", Json::Str(name.into())),
            ("params", Json::obj(params.iter().map(|&(k, v)| (k, Json::Num(v))))),
            ("samples", Json::Num(samples.len() as f64)),
            ("median_ns", Json::Num(median.as_nanos() as f64)),
        ];
        if let Some(t) = throughput {
            members.push(("throughput_per_s", Json::Num(t)));
        }
        self.records.push(Json::obj(members));
    }

    /// Write `BENCH_<bench>.json` at the workspace root and return its
    /// path. Call once, after all records are in.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(format!("BENCH_{}.json", self.bench));
        let doc = Json::obj([
            ("bench", Json::Str(self.bench.into())),
            ("records", Json::Arr(self.records.clone())),
        ]);
        std::fs::write(&path, format!("{doc}\n"))?;
        Ok(path.canonicalize().unwrap_or(path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_shape() {
        let mut report = BenchReport::new("test-shape");
        report.record(
            "k1",
            &[("n", 5.0)],
            &[Duration::from_nanos(30), Duration::from_nanos(10), Duration::from_nanos(20)],
            Some(1.5),
        );
        let doc = format!("{}", Json::obj([("records", Json::Arr(report.records.clone()))]));
        assert!(doc.contains("\"median_ns\":20"), "{doc}");
        assert!(doc.contains("\"throughput_per_s\":1.5"), "{doc}");
        assert!(doc.contains("\"params\":{\"n\":5}"), "{doc}");
    }
}
