//! Sparse capacitated assignment over explicit candidate edges.
//!
//! The dense per-stage SDGA matrix is `P × R` even when almost every cell is
//! forbidden or zero — on pruned (top-k) stages only `P × k` edges carry
//! information. [`SparseMatrix`] stores exactly those `(row, col, weight)`
//! edges in CSR layout and solves the same maximum-weight capacitated
//! assignment as [`CapacitatedAssignment`](crate::CapacitatedAssignment),
//! through either backend:
//!
//! * [`SparseMatrix::solve_capacitated`] — min-cost max-flow over the edge
//!   list alone. The network is built edge-for-edge in the same order as the
//!   dense front-end (rows ascending, columns ascending within a row), so a
//!   fully dense [`SparseMatrix`] produces **bit-identical assignments** to
//!   the dense solver — the property the engine's `TopK(k ≥ R)` ≡ `Exact`
//!   proptests pin down.
//! * [`SparseMatrix::solve_hungarian`] — columns that appear in at least one
//!   edge (and have capacity) are compacted and slot-expanded, absent cells
//!   become forbidden, and the dense Hungarian solver runs on the reduced
//!   matrix.
//!
//! Rows with no edge (or whose edges all hit exhausted columns) come back
//! unmatched; callers decide whether that is an error or a fallback trigger.

use crate::flow::{MinCostFlow, COST_SCALE};
use crate::hungarian::hungarian_max;
use crate::matrix::CostMatrix;
use crate::Assignment;

/// CSR edge list for a sparse assignment problem: `rows` left nodes,
/// `cols` right nodes, one weighted edge per stored entry. Absent cells are
/// forbidden pairs (the sparse analogue of `f64::NEG_INFINITY`).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    cols: usize,
    ptr: Vec<usize>,
    col: Vec<u32>,
    w: Vec<f64>,
}

impl SparseMatrix {
    /// Build from per-row edge lists (`(column, weight)`). Entries with a
    /// `NEG_INFINITY` weight are dropped (forbidden is the default for
    /// absent cells); rows need not be sorted — they are sorted by column
    /// here so solve order is canonical.
    pub fn from_rows(cols: usize, rows: Vec<Vec<(u32, f64)>>) -> Self {
        let mut ptr = Vec::with_capacity(rows.len() + 1);
        let mut col = Vec::new();
        let mut w = Vec::new();
        ptr.push(0);
        for mut row in rows {
            row.retain(|&(c, weight)| {
                assert!((c as usize) < cols, "edge column {c} out of range");
                weight != f64::NEG_INFINITY
            });
            row.sort_by_key(|&(c, _)| c);
            for (c, weight) in row {
                col.push(c);
                w.push(weight);
            }
            ptr.push(col.len());
        }
        Self { cols, ptr, col, w }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.ptr.len() - 1
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored edges.
    pub fn nnz(&self) -> usize {
        self.col.len()
    }

    /// Row `i`'s edges as `(columns ascending, weights)`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.ptr[i], self.ptr[i + 1]);
        (&self.col[lo..hi], &self.w[lo..hi])
    }

    /// Largest finite edge weight, or `None` with no finite edges.
    pub fn max_finite(&self) -> Option<f64> {
        self.w
            .iter()
            .copied()
            .filter(|v| v.is_finite())
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Bytes held by the CSR arrays (score-state memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.ptr.len() * std::mem::size_of::<usize>()
            + self.col.len() * std::mem::size_of::<u32>()
            + self.w.len() * std::mem::size_of::<f64>()
    }

    /// Densify with `f64::NEG_INFINITY` in absent cells (tests, Hungarian
    /// cross-checks).
    pub fn to_dense(&self) -> CostMatrix {
        let mut m = CostMatrix::filled(self.rows(), self.cols, f64::NEG_INFINITY);
        for i in 0..self.rows() {
            let (cs, ws) = self.row(i);
            for (&c, &weight) in cs.iter().zip(ws) {
                m.set(i, c as usize, weight);
            }
        }
        m
    }

    /// Maximum-weight capacitated assignment by min-cost max-flow over the
    /// stored edges: every row wants exactly one column, column `j` accepts
    /// at most `col_caps[j]` rows. Mirrors
    /// [`CapacitatedAssignment::solve`](crate::CapacitatedAssignment::solve)
    /// — same node layout, same cost scaling, edges added in the same
    /// (row-major, column-ascending) order — so a fully dense edge set
    /// reproduces the dense solver's assignment exactly.
    pub fn solve_capacitated(&self, col_caps: &[i64]) -> Assignment {
        assert_eq!(self.cols, col_caps.len());
        let (r, c) = (self.rows(), self.cols);
        if r == 0 {
            return Assignment { row_to_col: vec![], objective: 0.0 };
        }
        let shift = self.max_finite().unwrap_or(0.0).max(0.0);
        // Node ids: 0 = source, 1..=r rows, r+1..=r+c columns, r+c+1 sink.
        let s = 0;
        let t = r + c + 1;
        let mut net = MinCostFlow::new(r + c + 2);
        for i in 0..r {
            net.add_edge(s, 1 + i, 1, 0);
        }
        let mut pair_edges = vec![usize::MAX; self.nnz()];
        for i in 0..r {
            let (cs, ws) = self.row(i);
            for (k, (&j, &weight)) in cs.iter().zip(ws).enumerate() {
                let cost = ((shift - weight) * COST_SCALE).round() as i64;
                pair_edges[self.ptr[i] + k] = net.add_edge(1 + i, 1 + r + j as usize, 1, cost);
            }
        }
        for j in 0..c {
            if col_caps[j] > 0 {
                net.add_edge(1 + r + j, t, col_caps[j], 0);
            }
        }
        net.min_cost_flow(s, t, r as i64);

        let mut row_to_col = vec![None; r];
        let mut objective = 0.0;
        for i in 0..r {
            let (cs, ws) = self.row(i);
            for (k, (&j, &weight)) in cs.iter().zip(ws).enumerate() {
                let eid = pair_edges[self.ptr[i] + k];
                if net.flow_on(eid) > 0 {
                    row_to_col[i] = Some(j as usize);
                    objective += weight;
                    break;
                }
            }
        }
        Assignment { row_to_col, objective }
    }

    /// Maximum-weight capacitated assignment through the Hungarian backend:
    /// columns with edges and capacity are compacted, expanded into
    /// capacity-many slots, and the dense rectangular solver runs on the
    /// reduced matrix (absent cells forbidden).
    pub fn solve_hungarian(&self, col_caps: &[i64]) -> Assignment {
        assert_eq!(self.cols, col_caps.len());
        let r = self.rows();
        if r == 0 {
            return Assignment { row_to_col: vec![], objective: 0.0 };
        }
        let mut used = vec![false; self.cols];
        for &c in &self.col {
            used[c as usize] = true;
        }
        let mut slot_owner = Vec::new();
        for (j, &u) in used.iter().enumerate() {
            if u {
                for _ in 0..col_caps[j] {
                    slot_owner.push(j);
                }
            }
        }
        let expanded = CostMatrix::from_fn(r, slot_owner.len(), |i, s| {
            let (cs, ws) = self.row(i);
            match cs.binary_search(&(slot_owner[s] as u32)) {
                Ok(k) => ws[k],
                Err(_) => f64::NEG_INFINITY,
            }
        });
        match hungarian_max(&expanded) {
            Some(sol) => Assignment {
                row_to_col: sol.row_to_col.into_iter().map(|c| c.map(|s| slot_owner[s])).collect(),
                objective: sol.objective,
            },
            None => Assignment { row_to_col: vec![None; r], objective: 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CapacitatedAssignment;

    fn dense_rows(m: &CostMatrix) -> Vec<Vec<(u32, f64)>> {
        (0..m.rows())
            .map(|i| {
                (0..m.cols())
                    .filter(|&j| m.get(i, j) != f64::NEG_INFINITY)
                    .map(|j| (j as u32, m.get(i, j)))
                    .collect()
            })
            .collect()
    }

    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed | 1;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    #[test]
    fn fully_dense_edges_match_dense_flow_bitwise() {
        let mut next = rng(0xC0FFEE);
        for n in 1..=6 {
            let m = CostMatrix::from_fn(n, n + 1, |_, _| next() * 3.0);
            let caps = vec![2i64; n + 1];
            let sparse = SparseMatrix::from_rows(n + 1, dense_rows(&m));
            let a = sparse.solve_capacitated(&caps);
            let b = CapacitatedAssignment::new(&m, &caps).solve();
            assert_eq!(a.row_to_col, b.row_to_col);
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        }
    }

    #[test]
    fn sparse_pattern_matches_dense_with_forbidden_cells() {
        let mut next = rng(0xBEEF);
        for trial in 0..15 {
            let (r, c) = (5, 7);
            let m = CostMatrix::from_fn(r, c, |_, _| {
                if next() < 0.5 {
                    f64::NEG_INFINITY
                } else {
                    next() * 2.0
                }
            });
            let caps: Vec<i64> = (0..c).map(|_| 1 + (next() * 2.0) as i64).collect();
            let sparse = SparseMatrix::from_rows(c, dense_rows(&m));
            let a = sparse.solve_capacitated(&caps);
            let b = CapacitatedAssignment::new(&m, &caps).solve();
            // Same matched-row set and same optimal objective (equal-weight
            // matchings may differ only when ties exist; the flow networks
            // are isomorphic here, so even assignments agree).
            assert_eq!(a.row_to_col, b.row_to_col, "trial {trial}");
            assert!((a.objective - b.objective).abs() < 1e-9);
        }
    }

    #[test]
    fn hungarian_backend_agrees_on_objective() {
        let mut next = rng(0xABCD);
        for _ in 0..10 {
            let (r, c) = (4, 6);
            let m = CostMatrix::from_fn(r, c, |_, _| {
                if next() < 0.4 {
                    f64::NEG_INFINITY
                } else {
                    next() * 5.0
                }
            });
            let caps = vec![1i64; c];
            let sparse = SparseMatrix::from_rows(c, dense_rows(&m));
            let flow = sparse.solve_capacitated(&caps);
            let hung = sparse.solve_hungarian(&caps);
            if flow.matched() == r && hung.matched() == r {
                assert!((flow.objective - hung.objective).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn rows_without_edges_stay_unmatched() {
        let sparse = SparseMatrix::from_rows(3, vec![vec![(1, 2.0)], vec![]]);
        let caps = vec![1i64; 3];
        let sol = sparse.solve_capacitated(&caps);
        assert_eq!(sol.row_to_col, vec![Some(1), None]);
        assert_eq!(sol.matched(), 1);
        let sol = sparse.solve_hungarian(&caps);
        assert_eq!(sol.row_to_col, vec![Some(1), None]);
    }

    #[test]
    fn capacity_exhaustion_prefers_heavier_rows() {
        let sparse =
            SparseMatrix::from_rows(1, vec![vec![(0, 1.0)], vec![(0, 3.0)], vec![(0, 2.0)]]);
        let sol = sparse.solve_capacitated(&[2]);
        assert_eq!(sol.matched(), 2);
        assert!((sol.objective - 5.0).abs() < 1e-9);
    }

    #[test]
    fn to_dense_roundtrip() {
        let sparse = SparseMatrix::from_rows(4, vec![vec![(2, 1.5), (0, 0.5)], vec![(3, 2.5)]]);
        assert_eq!(sparse.nnz(), 3);
        let d = sparse.to_dense();
        assert_eq!(d.get(0, 0), 0.5);
        assert_eq!(d.get(0, 2), 1.5);
        assert_eq!(d.get(1, 3), 2.5);
        assert_eq!(d.get(0, 1), f64::NEG_INFINITY);
        assert!(sparse.memory_bytes() > 0);
        // Unsorted input rows come back sorted by column.
        let (cs, _) = sparse.row(0);
        assert_eq!(cs, &[0, 2]);
    }
}
