//! Criterion microbenchmarks for the linear-assignment substrate: the
//! Hungarian algorithm vs min-cost flow on SDGA-stage-shaped problems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use wgrap_lap::{hungarian_max, CapacitatedAssignment, CostMatrix};

fn random_weights(rows: usize, cols: usize, seed: u64) -> CostMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    CostMatrix::from_fn(rows, cols, |_, _| rng.random::<f64>())
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("lap_square_unit_caps");
    group.sample_size(10);
    for n in [50usize, 100, 200] {
        let w = random_weights(n, n, n as u64);
        group.bench_with_input(BenchmarkId::new("hungarian", n), &w, |b, w| {
            b.iter(|| black_box(hungarian_max(w)))
        });
        let caps = vec![1i64; n];
        group.bench_with_input(BenchmarkId::new("flow", n), &w, |b, w| {
            b.iter(|| black_box(CapacitatedAssignment::new(w, &caps).solve()))
        });
    }
    group.finish();
}

fn bench_stage_shape(c: &mut Criterion) {
    // SDGA stage shape: P papers x R reviewers, reviewer capacity cap.
    // Hungarian needs slot expansion (R*cap columns); flow handles caps
    // natively — this is the ablation behind defaulting to flow.
    let (p, r, cap) = (154usize, 26usize, 6i64); // DB08 / 4 at delta_p = 3
    let w = random_weights(p, r, 9);
    let caps = vec![cap; r];
    let mut group = c.benchmark_group("lap_sdga_stage_shape");
    group.sample_size(10);
    group.bench_function("flow_capacitated", |b| {
        b.iter(|| black_box(CapacitatedAssignment::new(&w, &caps).solve()))
    });
    group.bench_function("hungarian_slot_expanded", |b| {
        b.iter(|| {
            let expanded =
                CostMatrix::from_fn(p, r * cap as usize, |i, s| w.get(i, s / cap as usize));
            black_box(hungarian_max(&expanded))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_square, bench_stage_shape);
criterion_main!(benches);
