//! [`ScoreContext`]: the flat structure-of-arrays view of an instance,
//! backed by [`PagedVec`] pages so epoch clones share untouched storage.

use super::pages::PagedVec;
use super::par;
use crate::error::{Error, Result};
use crate::problem::Instance;
use crate::score::Scoring;
use crate::topic::TopicVector;
use std::borrow::Cow;

/// Flat scoring context shared by every solver.
///
/// Holds row-major copies of the reviewer expertise matrix (`R × T`) and the
/// paper matrix (`P × T`), per-paper normalisers, and a CSR view over each
/// paper's non-zero topics. Construction is `O((R + P)·T)` once; afterwards
/// every kernel works on contiguous `&[f64]` rows with no boxed-slice
/// pointer chasing and no per-call allocation.
///
/// The two matrices live in [`PagedVec`]s whose pages hold a whole number
/// of rows ([`PagedVec::row_chunk`]), so row accessors still return
/// contiguous in-page slices while
/// [`clone_for_update`](ScoreContext::clone_for_update) shares every
/// untouched page across
/// epochs and a single-row patch copy-on-writes exactly one ~64 KiB page.
/// The normalisers and CSR view stay plain `Vec`s: at service scale they
/// are a few hundred KB — far below the threshold where paging beats a
/// straight memcpy — and `push_paper` appends to them in place.
///
/// All kernels are **bit-identical** to the legacy
/// [`Scoring`]/[`RunningGroup`](crate::score::RunningGroup) arithmetic: same
/// iteration order, same `/ total` vs `* (1/total)` convention per call
/// site, and the sparse view is only used for scorings where skipping a
/// zero paper weight is an exact no-op ([`Scoring::sparse_safe`]).
///
/// # Borrowed and owned storage
///
/// The instance behind a context is a [`Cow`]: [`ScoreContext::new`] borrows
/// (the zero-copy one-shot path every solver uses), while
/// [`ScoreContext::from_owned`] / [`ScoreContext::into_owned`] produce a
/// `ScoreContext<'static>` that owns its instance. Owned contexts are the
/// substrate of the `wgrap-service` versioned store: they can live inside
/// long-lived snapshots and accept **incremental instance updates**
/// ([`push_paper`](ScoreContext::push_paper),
/// [`push_reviewer`](ScoreContext::push_reviewer),
/// [`set_reviewer_row`](ScoreContext::set_reviewer_row)) that extend or
/// patch the flat arrays in place — bit-identical to a from-scratch rebuild
/// of the final instance — instead of paying `O((R + P)·T)` again. Every
/// mutation drops the lazily-built caches (pair matrix, auto candidates);
/// the caller may re-install an incrementally maintained candidate set via
/// [`install_auto_candidates`](ScoreContext::install_auto_candidates).
#[derive(Debug, Clone)]
pub struct ScoreContext<'a> {
    inst: Cow<'a, Instance>,
    scoring: Scoring,
    seed: u64,
    dim: usize,
    reviewers: PagedVec<f64>,
    papers: PagedVec<f64>,
    paper_totals: Vec<f64>,
    /// `1/total` (or `0` for a zero paper), the `RunningGroup` convention.
    paper_inv_totals: Vec<f64>,
    csr_ptr: Vec<usize>,
    csr_idx: Vec<u32>,
    csr_val: Vec<f64>,
    /// Lazily-built `P × R` pair-score matrix, shared by every solver that
    /// runs on this context (SM, ARAP-ILP, SRA) so the O(P·R·T) build
    /// happens once per context, not once per solve.
    pair_cache: std::sync::OnceLock<PairMatrix>,
    /// Lazily-built untruncated candidate set (the [`PruningPolicy::Auto`]
    /// lists), shared by every solver pruning under `Auto` on this context.
    ///
    /// [`PruningPolicy::Auto`]: super::candidates::PruningPolicy::Auto
    auto_candidates: std::sync::OnceLock<super::candidates::CandidateSet>,
}

impl ScoreContext<'static> {
    /// Build a context that owns its instance (no borrow, `'static`) — the
    /// storage mode behind long-lived service snapshots.
    pub fn from_owned(inst: Instance, scoring: Scoring) -> Self {
        Self::from_cow(Cow::Owned(inst), scoring)
    }
}

impl<'a> ScoreContext<'a> {
    /// Build the flat view of `inst` under `scoring` (seed 0).
    pub fn new(inst: &'a Instance, scoring: Scoring) -> Self {
        Self::from_cow(Cow::Borrowed(inst), scoring)
    }

    fn from_cow(inst: Cow<'a, Instance>, scoring: Scoring) -> Self {
        let dim = inst.num_topics();
        let flatten = |vs: &[TopicVector]| -> Vec<f64> {
            let mut out = Vec::with_capacity(vs.len() * dim);
            for v in vs {
                out.extend_from_slice(v.as_slice());
            }
            out
        };
        let papers = flatten(inst.papers());
        let reviewers = flatten(inst.reviewers());
        let paper_totals: Vec<f64> = inst.papers().iter().map(TopicVector::total).collect();
        let paper_inv_totals: Vec<f64> =
            paper_totals.iter().map(|&t| if t > 0.0 { 1.0 / t } else { 0.0 }).collect();
        let mut csr_ptr = Vec::with_capacity(inst.num_papers() + 1);
        let mut csr_idx = Vec::new();
        let mut csr_val = Vec::new();
        csr_ptr.push(0);
        for p in 0..inst.num_papers() {
            let row = &papers[p * dim..(p + 1) * dim];
            for (t, &w) in row.iter().enumerate() {
                if w > 0.0 {
                    csr_idx.push(t as u32);
                    csr_val.push(w);
                }
            }
            csr_ptr.push(csr_idx.len());
        }
        let chunk = PagedVec::<f64>::row_chunk(dim);
        Self {
            inst,
            scoring,
            seed: 0,
            dim,
            reviewers: PagedVec::from_vec(reviewers, chunk),
            papers: PagedVec::from_vec(papers, chunk),
            paper_totals,
            paper_inv_totals,
            csr_ptr,
            csr_idx,
            csr_val,
            pair_cache: std::sync::OnceLock::new(),
            auto_candidates: std::sync::OnceLock::new(),
        }
    }

    /// Set the seed consumed by stochastic solvers (SDGA-SRA).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Convert into a context that owns its instance (cloning it if it was
    /// borrowed); flat arrays, caches and the seed carry over as-is.
    pub fn into_owned(self) -> ScoreContext<'static> {
        ScoreContext {
            inst: Cow::Owned(self.inst.into_owned()),
            scoring: self.scoring,
            seed: self.seed,
            dim: self.dim,
            reviewers: self.reviewers,
            papers: self.papers,
            paper_totals: self.paper_totals,
            paper_inv_totals: self.paper_inv_totals,
            csr_ptr: self.csr_ptr,
            csr_idx: self.csr_idx,
            csr_val: self.csr_val,
            pair_cache: self.pair_cache,
            auto_candidates: self.auto_candidates,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.inst
    }

    /// The scoring function every kernel applies.
    pub fn scoring(&self) -> Scoring {
        self.scoring
    }

    /// Seed for stochastic solvers.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Topic dimension `T`.
    pub fn num_topics(&self) -> usize {
        self.dim
    }

    /// Number of papers `P`.
    pub fn num_papers(&self) -> usize {
        self.paper_totals.len()
    }

    /// Number of reviewers `R`.
    pub fn num_reviewers(&self) -> usize {
        // `dim == 0` collapses every flat row to nothing — fall back to the
        // instance's count.
        self.reviewers.len().checked_div(self.dim).unwrap_or(self.inst.num_reviewers())
    }

    /// Reviewer `r`'s expertise row — contiguous because pages hold whole
    /// rows ([`PagedVec::row_chunk`]).
    #[inline]
    pub fn reviewer_row(&self, r: usize) -> &[f64] {
        self.reviewers.slice(r * self.dim, self.dim)
    }

    /// Paper `p`'s topic row.
    #[inline]
    pub fn paper_row(&self, p: usize) -> &[f64] {
        self.papers.slice(p * self.dim, self.dim)
    }

    /// Paper `p`'s normaliser `Σ_t p[t]`.
    #[inline]
    pub fn paper_total(&self, p: usize) -> f64 {
        self.paper_totals[p]
    }

    /// Paper `p`'s `1/total` (0 for a zero paper), the incremental-gain
    /// convention shared with [`RunningGroup`](crate::score::RunningGroup).
    #[inline]
    pub fn paper_inv_total(&self, p: usize) -> f64 {
        self.paper_inv_totals[p]
    }

    /// Paper `p`'s non-zero topics as `(indices, weights)`.
    #[inline]
    pub fn paper_sparse(&self, p: usize) -> (&[u32], &[f64]) {
        let lo = self.csr_ptr[p];
        let hi = self.csr_ptr[p + 1];
        (&self.csr_idx[lo..hi], &self.csr_val[lo..hi])
    }

    /// May kernels use the CSR view under this context's scoring?
    #[inline]
    pub fn sparse(&self) -> bool {
        self.scoring.sparse_safe()
    }

    /// `c(r, p)` — bit-identical to
    /// [`Scoring::pair_score`](crate::score::Scoring::pair_score) on the
    /// boxed vectors (numerator summed in ascending topic order, then one
    /// division by the paper total).
    pub fn pair_score(&self, r: usize, p: usize) -> f64 {
        let total = self.paper_totals[p];
        if total <= 0.0 {
            return 0.0;
        }
        let row = self.reviewer_row(r);
        let mut raw = 0.0;
        if self.sparse() {
            let (idx, val) = self.paper_sparse(p);
            for (&t, &w) in idx.iter().zip(val) {
                raw += self.scoring.topic_contribution(row[t as usize], w);
            }
        } else {
            for (&e, &w) in row.iter().zip(self.paper_row(p)) {
                raw += self.scoring.topic_contribution(e, w);
            }
        }
        raw / total
    }

    /// The dense `P × R` pair-score matrix, built once per context (rows in
    /// parallel when the `rayon` feature is enabled — bit-identical either
    /// way) and cached for every subsequent solver.
    pub fn pair_matrix(&self) -> &PairMatrix {
        self.pair_cache.get_or_init(|| self.build_pair_matrix())
    }

    /// Build the pair matrix unconditionally (no cache) — the kernel behind
    /// [`ScoreContext::pair_matrix`], exposed for benchmarking.
    pub fn build_pair_matrix(&self) -> PairMatrix {
        let num_r = self.num_reviewers();
        let rows = par::map_indexed(self.num_papers(), |p| {
            let mut row = Vec::with_capacity(num_r);
            for r in 0..num_r {
                row.push(self.pair_score(r, p));
            }
            row
        });
        PairMatrix::from_rows(num_r, rows)
    }

    /// The untruncated candidate set (every positive-score reviewer per
    /// paper — the [`PruningPolicy::Auto`] lists), built once per context
    /// and shared by every solver pruning under `Auto`. Always certified.
    ///
    /// [`PruningPolicy::Auto`]: super::candidates::PruningPolicy::Auto
    pub fn auto_candidates(&self) -> &super::candidates::CandidateSet {
        self.auto_candidates.get_or_init(|| super::candidates::CandidateSet::build(self, None))
    }

    /// The auto candidate set if it has already been built or installed —
    /// never triggers a build. Single-paper consumers (the routed JRA BBA
    /// setup) use this to reuse a maintained set when one exists without
    /// forcing an all-papers build when one does not.
    pub fn cached_auto_candidates(&self) -> Option<&super::candidates::CandidateSet> {
        self.auto_candidates.get()
    }

    /// Take the cached auto candidate set out of the context (if it was ever
    /// built or installed), leaving the cache empty. Incremental-update
    /// callers take the set, patch it alongside the context, and
    /// [re-install](ScoreContext::install_auto_candidates) it.
    pub fn take_auto_candidates(&mut self) -> Option<super::candidates::CandidateSet> {
        self.auto_candidates.take()
    }

    /// Clone for a copy-on-write update. The paged matrices, the candidate
    /// rows and the instance's topic-vector slabs are all `Arc`-shared, so
    /// this is O(pages) refcount bumps plus a memcpy of the small unpaged
    /// state (normalisers, CSR) — **not** O((R+P)·T). Pages are copied
    /// lazily, one at a time, by whichever mutations follow. The cached
    /// dense `P × R` pair matrix does **not** carry over — the first
    /// mutation would drop it anyway, and at service scale it dwarfs
    /// everything else.
    pub fn clone_for_update(&self) -> ScoreContext<'static> {
        let auto_candidates = std::sync::OnceLock::new();
        if let Some(cands) = self.auto_candidates.get() {
            let _ = auto_candidates.set(cands.clone());
        }
        ScoreContext {
            inst: Cow::Owned(self.inst.as_ref().clone()),
            scoring: self.scoring,
            seed: self.seed,
            dim: self.dim,
            reviewers: self.reviewers.clone(),
            papers: self.papers.clone(),
            paper_totals: self.paper_totals.clone(),
            paper_inv_totals: self.paper_inv_totals.clone(),
            csr_ptr: self.csr_ptr.clone(),
            csr_idx: self.csr_idx.clone(),
            csr_val: self.csr_val.clone(),
            pair_cache: std::sync::OnceLock::new(),
            auto_candidates,
        }
    }

    /// Install a pre-built untruncated candidate set as this context's
    /// [`auto_candidates`](ScoreContext::auto_candidates) cache. The caller
    /// asserts the set matches what [`CandidateSet::build`] would produce on
    /// the current context — the service store's update proptests certify
    /// exactly that (bit-identity to a from-scratch rebuild).
    ///
    /// [`CandidateSet::build`]: super::candidates::CandidateSet::build
    pub fn install_auto_candidates(&mut self, cands: super::candidates::CandidateSet) {
        assert_eq!(cands.num_papers(), self.num_papers(), "candidate set has wrong paper count");
        assert_eq!(
            cands.num_reviewers(),
            self.num_reviewers(),
            "candidate set has wrong reviewer count"
        );
        self.auto_candidates = std::sync::OnceLock::new();
        let _ = self.auto_candidates.set(cands);
    }

    /// Drop the lazily-built caches (pair matrix, auto candidates). Called
    /// by every mutation; also available to callers that patch state
    /// externally.
    fn invalidate_caches(&mut self) {
        self.pair_cache = std::sync::OnceLock::new();
        self.auto_candidates = std::sync::OnceLock::new();
    }

    /// Append a paper, extending the flat matrix, the normalisers and the
    /// CSR sparse view in place — bit-identical to rebuilding the context
    /// from the extended instance, at `O(T)` instead of `O((R + P)·T)`.
    /// Returns the new paper's index. Fails (leaving the context untouched)
    /// if the dimension mismatches or capacity `R·δr ≥ (P+1)·δp` breaks.
    ///
    /// Drops the cached pair matrix and auto candidate set; incremental
    /// candidate maintenance lives in the service store, which re-installs
    /// the patched set.
    pub fn push_paper(&mut self, name: Option<String>, paper: TopicVector) -> Result<usize> {
        if paper.dim() != self.dim {
            return Err(Error::InvalidInstance(format!(
                "paper dimension {} != context dimension {}",
                paper.dim(),
                self.dim
            )));
        }
        let p = self.inst.to_mut().push_paper(name, paper)?;
        let row = self.inst.paper(p);
        // Mirror `from_cow` exactly: flat row, total, 1/total, CSR row.
        self.papers.extend_from_slice(row.as_slice());
        let total = row.total();
        self.paper_totals.push(total);
        self.paper_inv_totals.push(if total > 0.0 { 1.0 / total } else { 0.0 });
        for (t, &w) in row.as_slice().iter().enumerate() {
            if w > 0.0 {
                self.csr_idx.push(t as u32);
                self.csr_val.push(w);
            }
        }
        self.csr_ptr.push(self.csr_idx.len());
        self.invalidate_caches();
        Ok(p)
    }

    /// Append a reviewer, extending the flat expertise matrix in place.
    /// Returns the new reviewer's index. See
    /// [`push_paper`](ScoreContext::push_paper) for the cache contract.
    pub fn push_reviewer(&mut self, name: Option<String>, reviewer: TopicVector) -> Result<usize> {
        if reviewer.dim() != self.dim {
            return Err(Error::InvalidInstance(format!(
                "reviewer dimension {} != context dimension {}",
                reviewer.dim(),
                self.dim
            )));
        }
        let r = self.inst.to_mut().push_reviewer(name, reviewer)?;
        self.reviewers.extend_from_slice(self.inst.reviewer(r).as_slice());
        self.invalidate_caches();
        Ok(r)
    }

    /// Replace reviewer `r`'s expertise row in place (the `PatchScores` /
    /// `RetireReviewer` kernel — retiring is patching to the zero vector,
    /// after which every pair score involving `r` is exactly `0.0`). See
    /// [`push_paper`](ScoreContext::push_paper) for the cache contract.
    pub fn set_reviewer_row(&mut self, r: usize, expertise: TopicVector) -> Result<()> {
        if expertise.dim() != self.dim {
            return Err(Error::InvalidInstance(format!(
                "reviewer dimension {} != context dimension {}",
                expertise.dim(),
                self.dim
            )));
        }
        self.inst.to_mut().set_reviewer_vector(r, expertise)?;
        // Copy-on-writes exactly the page holding row `r`.
        self.reviewers.write(r * self.dim, self.inst.reviewer(r).as_slice());
        self.invalidate_caches();
        Ok(())
    }

    /// Content bytes of the scoring state (paged matrices plus the unpaged
    /// normalisers and CSR view). Length-derived and deterministic, so safe
    /// to surface in golden-tested protocol output.
    pub fn memory_bytes(&self) -> usize {
        self.reviewers.memory_bytes()
            + self.papers.memory_bytes()
            + (self.paper_totals.len() + self.paper_inv_totals.len() + self.csr_val.len())
                * std::mem::size_of::<f64>()
            + self.csr_ptr.len() * std::mem::size_of::<usize>()
            + self.csr_idx.len() * std::mem::size_of::<u32>()
    }

    /// Total matrix pages (reviewers + papers).
    pub fn num_pages(&self) -> usize {
        self.reviewers.table().num_pages() + self.papers.table().num_pages()
    }

    /// Matrix pages physically shared with `other` (per-index
    /// `Arc::ptr_eq`) — the structural-sharing metric between the epoch
    /// snapshots the service publishes.
    pub fn shared_pages_with(&self, other: &ScoreContext<'_>) -> usize {
        self.reviewers.table().shared_pages_with(other.reviewers.table())
            + self.papers.table().shared_pages_with(other.papers.table())
    }

    /// Append each matrix page's `(address, bytes)` identity for
    /// cross-epoch retention accounting (see
    /// [`PageTable::page_identities`](super::pages::PageTable::page_identities)).
    pub fn page_identities(&self, out: &mut Vec<(usize, usize)>) {
        self.reviewers.table().page_identities(out);
        self.papers.table().page_identities(out);
    }

    /// Copy every shared matrix page so this context owns its storage
    /// privately — reconstructing the pre-paging full-memcpy clone. Kept
    /// for the paged-vs-flat benches and the paged≡flat certification
    /// tests; reads are unaffected.
    pub fn unshare_pages(&mut self) {
        self.reviewers.unshare();
        self.papers.unshare();
    }

    /// Declare `(reviewer, paper)` a conflict of interest on the underlying
    /// instance. COIs feed [`jra_view`](ScoreContext::jra_view) masks only —
    /// no score or candidate state depends on them, so caches survive.
    pub fn add_coi(&mut self, reviewer: usize, paper: usize) {
        self.inst.to_mut().add_coi(reviewer, paper);
    }

    /// A single-paper JRA view over this context's flat rows, with the
    /// instance's COI mask for `p`.
    pub fn jra_view(&self, p: usize) -> JraView<'_> {
        let forbidden = (0..self.num_reviewers()).map(|r| self.inst.is_coi(r, p)).collect();
        self.jra_view_with_forbidden(p, forbidden)
    }

    /// A single-paper JRA view with an explicit candidate mask (BRGG feeds
    /// in capacity exhaustion on top of COIs).
    pub fn jra_view_with_forbidden(&self, p: usize, forbidden: Vec<bool>) -> JraView<'_> {
        JraView {
            paper: self.paper_row(p),
            total: self.paper_totals[p],
            inv_total: self.paper_inv_totals[p],
            rows: Rows::Paged { data: &self.reviewers, dim: self.dim, len: self.num_reviewers() },
            forbidden,
            delta_p: self.inst.delta_p(),
            scoring: self.scoring,
        }
    }

    /// A JRA view for a paper that is **not** part of the instance — the
    /// online journal scenario, where a query paper arrives against the
    /// standing reviewer pool. The view scores `paper` against this
    /// context's flat reviewer rows under its scoring; `forbidden` masks
    /// per-query conflicts (no stored COI applies to an unknown paper) and
    /// `delta_p` is the requested group size.
    pub fn jra_view_adhoc<'v>(
        &'v self,
        paper: &'v TopicVector,
        forbidden: Vec<bool>,
        delta_p: usize,
    ) -> JraView<'v> {
        assert_eq!(paper.dim(), self.dim, "query paper dimension mismatch");
        assert_eq!(forbidden.len(), self.num_reviewers());
        let total = paper.total();
        JraView {
            paper: paper.as_slice(),
            total,
            inv_total: if total > 0.0 { 1.0 / total } else { 0.0 },
            rows: Rows::Paged { data: &self.reviewers, dim: self.dim, len: self.num_reviewers() },
            forbidden,
            delta_p,
            scoring: self.scoring,
        }
    }
}

/// Dense `P × R` pair-score matrix (`c(r, p)` per cell).
#[derive(Debug, Clone)]
pub struct PairMatrix {
    num_reviewers: usize,
    data: Vec<f64>,
}

impl PairMatrix {
    fn from_rows(num_reviewers: usize, rows: Vec<Vec<f64>>) -> Self {
        let mut data = Vec::with_capacity(rows.len() * num_reviewers);
        for row in rows {
            debug_assert_eq!(row.len(), num_reviewers);
            data.extend(row);
        }
        Self { num_reviewers, data }
    }

    /// Build from the legacy boxed-vector scoring path (the reference
    /// implementation the engine path is tested against).
    pub fn from_instance(inst: &Instance, scoring: Scoring) -> Self {
        let num_r = inst.num_reviewers();
        let rows = par::map_indexed(inst.num_papers(), |p| {
            (0..num_r).map(|r| scoring.pair_score(inst.reviewer(r), inst.paper(p))).collect()
        });
        Self::from_rows(num_r, rows)
    }

    /// `c(r, p)`.
    #[inline]
    pub fn get(&self, r: usize, p: usize) -> f64 {
        self.data[p * self.num_reviewers + r]
    }

    /// Paper `p`'s scores over all reviewers.
    #[inline]
    pub fn paper_row(&self, p: usize) -> &[f64] {
        &self.data[p * self.num_reviewers..(p + 1) * self.num_reviewers]
    }

    /// Number of papers.
    pub fn num_papers(&self) -> usize {
        self.data.len().checked_div(self.num_reviewers).unwrap_or(0)
    }

    /// Number of reviewers.
    pub fn num_reviewers(&self) -> usize {
        self.num_reviewers
    }
}

/// Reviewer-row storage behind a [`JraView`]: boxed legacy vectors or the
/// engine's paged row-major matrix. One enum dispatch per row access keeps
/// the exact JRA machinery (BBA, greedy seeding) generic over both without
/// monomorphisation or trait objects in the hot loop; paged rows are
/// whole-row in-page slices, so the kernels still see contiguous `&[f64]`.
#[derive(Debug, Clone, Copy)]
enum Rows<'a> {
    Boxed(&'a [TopicVector]),
    Paged { data: &'a PagedVec<f64>, dim: usize, len: usize },
}

/// A single-paper reviewer-selection view: the common substrate the exact
/// JRA solvers run on, whether fed from a legacy
/// [`JraProblem`](crate::jra::JraProblem) or a [`ScoreContext`].
#[derive(Debug, Clone)]
pub struct JraView<'a> {
    /// The paper's topic weights.
    pub paper: &'a [f64],
    /// `Σ_t paper[t]`.
    pub total: f64,
    /// `1/total`, or 0 for a zero paper.
    pub inv_total: f64,
    rows: Rows<'a>,
    /// Conflicted / unavailable candidates.
    pub forbidden: Vec<bool>,
    /// Group size `δp`.
    pub delta_p: usize,
    /// Scoring function.
    pub scoring: Scoring,
}

impl<'a> JraView<'a> {
    /// View over boxed legacy vectors (the reference path).
    pub fn from_boxed(
        paper: &'a TopicVector,
        reviewers: &'a [TopicVector],
        forbidden: Vec<bool>,
        delta_p: usize,
        scoring: Scoring,
    ) -> Self {
        let total = paper.total();
        Self {
            paper: paper.as_slice(),
            total,
            inv_total: if total > 0.0 { 1.0 / total } else { 0.0 },
            rows: Rows::Boxed(reviewers),
            forbidden,
            delta_p,
            scoring,
        }
    }

    /// Candidate count (including forbidden entries).
    #[inline]
    pub fn num_reviewers(&self) -> usize {
        match self.rows {
            Rows::Boxed(v) => v.len(),
            Rows::Paged { len, .. } => len,
        }
    }

    /// Reviewer `r`'s expertise row.
    #[inline]
    pub fn row(&self, r: usize) -> &'a [f64] {
        match self.rows {
            Rows::Boxed(v) => v[r].as_slice(),
            Rows::Paged { data, dim, .. } => data.slice(r * dim, dim),
        }
    }

    /// Number of non-forbidden candidates.
    pub fn num_feasible(&self) -> usize {
        self.forbidden.iter().filter(|f| !**f).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;

    #[test]
    fn flat_rows_match_boxed_vectors() {
        let inst = random_instance(6, 5, 4, 2, 9);
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        for r in 0..5 {
            assert_eq!(ctx.reviewer_row(r), inst.reviewer(r).as_slice());
        }
        for p in 0..6 {
            assert_eq!(ctx.paper_row(p), inst.paper(p).as_slice());
            assert_eq!(ctx.paper_total(p), inst.paper(p).total());
            let (idx, val) = ctx.paper_sparse(p);
            for (&t, &w) in idx.iter().zip(val) {
                assert_eq!(inst.paper(p)[t as usize], w);
            }
        }
    }

    #[test]
    fn pair_scores_bit_identical_for_all_scorings() {
        let inst = random_instance(7, 6, 5, 2, 3);
        for scoring in Scoring::ALL {
            let ctx = ScoreContext::new(&inst, scoring);
            let m = ctx.pair_matrix();
            let legacy = PairMatrix::from_instance(&inst, scoring);
            for p in 0..7 {
                for r in 0..6 {
                    let want = scoring.pair_score(inst.reviewer(r), inst.paper(p));
                    // Bit-identical, not approximately equal.
                    assert_eq!(ctx.pair_score(r, p).to_bits(), want.to_bits());
                    assert_eq!(m.get(r, p).to_bits(), want.to_bits());
                    assert_eq!(legacy.get(r, p).to_bits(), want.to_bits());
                }
            }
        }
    }

    #[test]
    fn incremental_mutations_match_rebuild_bitwise() {
        let inst = random_instance(3, 4, 5, 1, 13);
        for scoring in Scoring::ALL {
            let mut ctx = ScoreContext::new(&inst, scoring).into_owned();
            // Warm the caches so invalidation is exercised.
            let _ = ctx.pair_matrix();
            let _ = ctx.auto_candidates();
            let extra_r = inst.reviewer(0).scaled(0.5);
            let extra_p = inst.paper(1).scaled(2.0);
            let r = ctx.push_reviewer(None, extra_r.clone()).unwrap();
            let p = ctx.push_paper(None, extra_p.clone()).unwrap();
            ctx.set_reviewer_row(1, extra_r.clone()).unwrap();
            ctx.add_coi(r, p);

            let mut want = inst.clone();
            want.push_reviewer(None, extra_r.clone()).unwrap();
            want.push_paper(None, extra_p.clone()).unwrap();
            want.set_reviewer_vector(1, extra_r.clone()).unwrap();
            want.add_coi(r, p);
            let rebuilt = ScoreContext::new(&want, scoring);

            assert_eq!(ctx.num_papers(), rebuilt.num_papers());
            assert_eq!(ctx.num_reviewers(), rebuilt.num_reviewers());
            for q in 0..ctx.num_papers() {
                assert_eq!(ctx.paper_row(q), rebuilt.paper_row(q));
                assert_eq!(ctx.paper_total(q).to_bits(), rebuilt.paper_total(q).to_bits());
                assert_eq!(ctx.paper_inv_total(q).to_bits(), rebuilt.paper_inv_total(q).to_bits());
                assert_eq!(ctx.paper_sparse(q), rebuilt.paper_sparse(q));
                for c in 0..ctx.num_reviewers() {
                    assert_eq!(
                        ctx.pair_score(c, q).to_bits(),
                        rebuilt.pair_score(c, q).to_bits(),
                        "{scoring:?} pair ({c},{q})"
                    );
                }
            }
            assert!(ctx.instance().is_coi(r, p));
            // The invalidated pair cache rebuilds to the new shape.
            assert_eq!(ctx.pair_matrix().num_papers(), 4);
            assert_eq!(ctx.pair_matrix().num_reviewers(), 5);
        }
    }

    #[test]
    fn clone_for_update_shares_pages_until_written() {
        let inst = random_instance(40, 60, 8, 2, 21);
        let base = ScoreContext::new(&inst, Scoring::WeightedCoverage).into_owned();
        let mut edited = base.clone_for_update();
        assert_eq!(edited.shared_pages_with(&base), base.num_pages());
        assert_eq!(edited.memory_bytes(), base.memory_bytes());

        let patch = inst.reviewer(7).scaled(0.5);
        edited.set_reviewer_row(7, patch.clone()).unwrap();
        // dim 8 => thousands of rows per 64 KiB page: everything still fits
        // in one reviewer page, so exactly one page was copied.
        assert_eq!(edited.shared_pages_with(&base), base.num_pages() - 1);
        // The base snapshot is frozen.
        assert_eq!(base.reviewer_row(7), inst.reviewer(7).as_slice());
        assert_eq!(edited.reviewer_row(7), patch.as_slice());
        assert_eq!(base.reviewer_row(3), edited.reviewer_row(3));

        // Unsharing reconstructs the flat full-copy layout bit-identically.
        let mut flat = edited.clone_for_update();
        flat.unshare_pages();
        assert_eq!(flat.shared_pages_with(&edited), 0);
        for r in 0..flat.num_reviewers() {
            assert_eq!(flat.reviewer_row(r), edited.reviewer_row(r));
        }
    }

    #[test]
    fn sparse_view_skips_zero_topics() {
        use crate::topic::TopicVector;
        let papers = vec![TopicVector::from_sparse(6, &[(1, 0.7), (4, 0.3)])];
        let reviewers = vec![
            TopicVector::new(vec![0.2, 0.3, 0.1, 0.1, 0.2, 0.1]),
            TopicVector::new(vec![0.0, 0.9, 0.0, 0.0, 0.1, 0.0]),
        ];
        let inst = Instance::new(papers, reviewers, 1, 1).unwrap();
        let ctx = ScoreContext::new(&inst, Scoring::WeightedCoverage);
        let (idx, _) = ctx.paper_sparse(0);
        assert_eq!(idx, &[1, 4]);
        for r in 0..2 {
            let want = Scoring::WeightedCoverage.pair_score(inst.reviewer(r), inst.paper(0));
            assert_eq!(ctx.pair_score(r, 0).to_bits(), want.to_bits());
        }
        // Reviewer coverage is not sparse-safe and must use the dense path.
        let dense_ctx = ScoreContext::new(&inst, Scoring::ReviewerCoverage);
        assert!(!dense_ctx.sparse());
        for r in 0..2 {
            let want = Scoring::ReviewerCoverage.pair_score(inst.reviewer(r), inst.paper(0));
            assert_eq!(dense_ctx.pair_score(r, 0).to_bits(), want.to_bits());
        }
    }
}
