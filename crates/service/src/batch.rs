//! [`JraBatch`]: grouped JRA queries executed against one snapshot.
//!
//! The journal scenario is online — queries arrive one at a time — but a
//! busy service sees many in flight at once. A batch admits every query at
//! one epoch (a single `Arc<Snapshot>`), shares that snapshot's candidate
//! lists and topic → reviewers index across all of them, and fans the
//! solves out on the engine's deterministic parallel substrate
//! (`wgrap-par` work-stealing under the `rayon` feature). Results are
//! written positionally — `results[i]` answers `queries[i]` — so a batch
//! returns **bit-identical** answers to solving its queries one at a time
//! in order, under any worker count (the skew proptest in this crate's
//! tests pins that down).

use crate::store::Snapshot;
use crate::telemetry::Histogram;
use crate::{Error, Result};
use std::sync::Arc;
use std::time::Instant;
use wgrap_core::engine::{par, PruningPolicy};
use wgrap_core::jra::bba::{self, BbaOptions};
use wgrap_core::jra::JraResult;
use wgrap_core::topic::TopicVector;

/// The paper a JRA query asks about.
#[derive(Debug, Clone)]
pub enum QueryPaper {
    /// A paper stored in the instance (its COI mask applies).
    Stored(usize),
    /// An ad-hoc paper that is not part of the instance — the classic
    /// journal query: a fresh submission against the standing pool.
    Adhoc(TopicVector),
}

/// One JRA query: the best group(s) of reviewers for one paper.
#[derive(Debug, Clone)]
pub struct JraQuery {
    /// The paper to find reviewers for.
    pub paper: QueryPaper,
    /// Group size override (default: the instance's `δp`).
    pub delta_p: Option<usize>,
    /// Number of best groups to return (default 1).
    pub top_k: usize,
    /// Per-query conflicted reviewer ids (on top of stored COIs).
    pub exclude: Vec<u32>,
    /// Per-query candidate pruning override (default: the batch's policy).
    pub pruning: Option<PruningPolicy>,
}

impl JraQuery {
    /// Query with defaults: instance `δp`, single best group, no excludes,
    /// the batch's pruning policy.
    pub fn new(paper: QueryPaper) -> Self {
        Self { paper, delta_p: None, top_k: 1, exclude: Vec::new(), pruning: None }
    }
}

/// A batch of JRA queries admitted at one epoch. See the module docs.
#[derive(Debug, Clone)]
pub struct JraBatch {
    snapshot: Arc<Snapshot>,
    pruning: PruningPolicy,
    queries: Vec<JraQuery>,
    /// Optional per-query solve-latency histogram (the service's
    /// `query_solve_seconds` series). Recorded from the solving worker
    /// thread — the histogram shards per thread, so the fan-out never
    /// contends — and never affects results (pure observation).
    solve_hist: Option<Arc<Histogram>>,
}

impl JraBatch {
    /// An empty batch against `snapshot` under a candidate pruning policy
    /// (`Auto` restricts each search to the certified candidate pool —
    /// score-exact; `TopK(k)` additionally truncates — lossy but bounded).
    pub fn new(snapshot: Arc<Snapshot>, pruning: PruningPolicy) -> Self {
        Self { snapshot, pruning, queries: Vec::new(), solve_hist: None }
    }

    /// Record each query's solve wall time into `hist` during [`run`]
    /// (nanosecond observations; see the module docs for determinism —
    /// observation never changes an answer).
    ///
    /// [`run`]: JraBatch::run
    pub fn set_solve_hist(&mut self, hist: Arc<Histogram>) {
        self.solve_hist = Some(hist);
    }

    /// Enqueue a query; answers come back positionally from [`run`].
    ///
    /// [`run`]: JraBatch::run
    pub fn push(&mut self, query: JraQuery) -> &mut Self {
        self.queries.push(query);
        self
    }

    /// The epoch every query in this batch is admitted at.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Number of enqueued queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Execute every query against the admitted snapshot. `results[i]`
    /// answers `queries[i]`; each entry fails independently (a malformed
    /// query never poisons its neighbours).
    pub fn run(&self) -> Vec<Result<Vec<JraResult>>> {
        par::map_indexed(self.queries.len(), |i| {
            let start = Instant::now();
            let result = self.solve_one(&self.queries[i]);
            if let Some(hist) = &self.solve_hist {
                hist.observe_duration(start.elapsed());
            }
            result
        })
    }

    fn solve_one(&self, query: &JraQuery) -> Result<Vec<JraResult>> {
        let pruning = query.pruning.unwrap_or(self.pruning);
        let ctx = self.snapshot.ctx();
        let num_r = ctx.num_reviewers();
        let delta_p = query.delta_p.unwrap_or_else(|| ctx.instance().delta_p());
        if delta_p == 0 || delta_p > num_r {
            return Err(Error::InvalidInstance(format!(
                "need 1 <= delta_p <= R, got delta_p={delta_p} R={num_r}"
            )));
        }
        if query.top_k == 0 {
            return Err(Error::InvalidInstance("top_k must be >= 1".into()));
        }
        for &r in &query.exclude {
            if r as usize >= num_r {
                return Err(Error::InvalidInstance(format!(
                    "excluded reviewer {r} out of range (R = {num_r})"
                )));
            }
        }
        let opts = BbaOptions { top_k: query.top_k, ..Default::default() };

        let (view, pool) = match &query.paper {
            QueryPaper::Stored(p) => {
                let p = *p;
                if p >= ctx.num_papers() {
                    return Err(Error::InvalidInstance(format!(
                        "paper {p} out of range (P = {})",
                        ctx.num_papers()
                    )));
                }
                let mut view = ctx.jra_view(p);
                view.delta_p = delta_p;
                let pool = match pruning {
                    PruningPolicy::Exact => None,
                    PruningPolicy::Auto => {
                        Some(self.snapshot.candidates().candidates(p).0.to_vec())
                    }
                    PruningPolicy::TopK(k) => {
                        Some(top_k_pool(self.snapshot.candidates().candidates(p), k))
                    }
                };
                (view, pool)
            }
            QueryPaper::Adhoc(paper) => {
                if paper.dim() != ctx.num_topics() {
                    return Err(Error::InvalidInstance(format!(
                        "query paper dimension {} != instance dimension {}",
                        paper.dim(),
                        ctx.num_topics()
                    )));
                }
                let view = ctx.jra_view_adhoc(paper, vec![false; num_r], delta_p);
                // The scored pool from the shared index ranks — and
                // tie-breaks — exactly like the same vector stored as a
                // paper (scores are the `raw / total` pair-score form), so
                // `TopK` truncates without a second scoring pass.
                let pool: Option<Vec<u32>> = match pruning {
                    PruningPolicy::Exact => None,
                    PruningPolicy::Auto => self
                        .snapshot
                        .candidate_pool_adhoc(paper)
                        .map(|row| row.into_iter().map(|(r, _)| r).collect()),
                    PruningPolicy::TopK(k) => {
                        self.snapshot.candidate_pool_adhoc(paper).map(|mut row| {
                            wgrap_core::engine::truncate_row(&mut row, k);
                            row.into_iter().map(|(r, _)| r).collect()
                        })
                    }
                };
                (view, pool)
            }
        };

        let mut view = view;
        for &r in &query.exclude {
            view.forbidden[r as usize] = true;
        }
        let results = match pool {
            Some(pool)
                if pool.iter().filter(|&&r| !view.forbidden[r as usize]).count() >= delta_p =>
            {
                bba::solve_view_pool(&view, &pool, &opts)
            }
            // Candidate starvation (or Exact): dense scan over the pool.
            _ => bba::solve_view(&view, &opts),
        };
        results.ok_or_else(|| Error::Infeasible("fewer than δp non-conflicted reviewers".into()))
    }
}

/// The ids a `TopK(k)` truncation keeps, via the engine's shared
/// [`truncate_row`](wgrap_core::engine::truncate_row) kernel — the same
/// `(score desc, id asc)` ranking `CandidateSet::build(ctx, Some(k))` uses.
fn top_k_pool((ids, scores): (&[u32], &[f64]), k: usize) -> Vec<u32> {
    let mut row: Vec<(u32, f64)> = ids.iter().copied().zip(scores.iter().copied()).collect();
    wgrap_core::engine::truncate_row(&mut row, k);
    row.into_iter().map(|(r, _)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::VersionedStore;
    use wgrap_core::prelude::{Instance, Scoring};

    fn tv(v: &[f64]) -> TopicVector {
        TopicVector::new(v.to_vec())
    }

    fn store() -> VersionedStore {
        let inst = Instance::new(
            vec![tv(&[0.5, 0.5, 0.0]), tv(&[0.0, 0.3, 0.7])],
            vec![
                tv(&[0.3, 0.7, 0.0]),
                tv(&[0.6, 0.4, 0.0]),
                tv(&[0.0, 0.2, 0.8]),
                tv(&[0.1, 0.1, 0.8]),
            ],
            2,
            2,
        )
        .unwrap();
        VersionedStore::new(inst, Scoring::WeightedCoverage, 0)
    }

    #[test]
    fn batch_matches_sequential_one_at_a_time() {
        let store = store();
        let snap = store.snapshot();
        for pruning in [PruningPolicy::Exact, PruningPolicy::Auto, PruningPolicy::TopK(2)] {
            let mut batch = JraBatch::new(Arc::clone(&snap), pruning);
            let queries = vec![
                JraQuery::new(QueryPaper::Stored(0)),
                JraQuery::new(QueryPaper::Stored(1)),
                JraQuery { top_k: 3, ..JraQuery::new(QueryPaper::Adhoc(tv(&[0.2, 0.2, 0.6]))) },
                JraQuery { exclude: vec![2], ..JraQuery::new(QueryPaper::Stored(1)) },
                JraQuery { delta_p: Some(1), ..JraQuery::new(QueryPaper::Stored(0)) },
            ];
            for q in &queries {
                batch.push(q.clone());
            }
            let batched = batch.run();
            assert_eq!(batched.len(), queries.len());
            for (i, q) in queries.iter().enumerate() {
                let mut single = JraBatch::new(Arc::clone(&snap), pruning);
                single.push(q.clone());
                let alone = single.run().pop().unwrap();
                match (&batched[i], &alone) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.len(), b.len());
                        for (x, y) in a.iter().zip(b) {
                            assert_eq!(x.group, y.group, "{pruning:?} query {i}");
                            assert_eq!(x.score.to_bits(), y.score.to_bits());
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{pruning:?} query {i}: {a:?} vs {b:?}"),
                }
            }
        }
    }

    #[test]
    fn auto_pruning_preserves_exact_scores() {
        let store = store();
        let snap = store.snapshot();
        let queries = vec![
            JraQuery::new(QueryPaper::Stored(0)),
            JraQuery::new(QueryPaper::Stored(1)),
            JraQuery::new(QueryPaper::Adhoc(tv(&[0.9, 0.1, 0.0]))),
        ];
        let run = |pruning| {
            let mut b = JraBatch::new(Arc::clone(&snap), pruning);
            for q in &queries {
                b.push(q.clone());
            }
            b.run()
        };
        let exact = run(PruningPolicy::Exact);
        let auto = run(PruningPolicy::Auto);
        for (e, a) in exact.iter().zip(&auto) {
            let (e, a) = (e.as_ref().unwrap(), a.as_ref().unwrap());
            assert_eq!(e[0].score.to_bits(), a[0].score.to_bits());
        }
    }

    #[test]
    fn query_validation_fails_per_entry() {
        let store = store();
        let mut batch = JraBatch::new(store.snapshot(), PruningPolicy::Auto);
        batch
            .push(JraQuery::new(QueryPaper::Stored(99)))
            .push(JraQuery { delta_p: Some(0), ..JraQuery::new(QueryPaper::Stored(0)) })
            .push(JraQuery { top_k: 0, ..JraQuery::new(QueryPaper::Stored(0)) })
            .push(JraQuery::new(QueryPaper::Adhoc(tv(&[1.0]))))
            .push(JraQuery { exclude: vec![9], ..JraQuery::new(QueryPaper::Stored(0)) })
            .push(JraQuery::new(QueryPaper::Stored(0)));
        let results = batch.run();
        assert_eq!(results.len(), 6);
        for r in &results[..5] {
            assert!(r.is_err());
        }
        assert!(results[5].is_ok());
    }

    #[test]
    fn excluding_everyone_is_infeasible() {
        let store = store();
        let mut batch = JraBatch::new(store.snapshot(), PruningPolicy::Auto);
        batch.push(JraQuery { exclude: vec![0, 1, 2, 3], ..JraQuery::new(QueryPaper::Stored(0)) });
        assert!(matches!(batch.run().pop().unwrap(), Err(Error::Infeasible(_))));
        assert!(!batch.is_empty());
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.epoch(), 0);
    }
}
