//! Stable Matching (SM) baseline — paper §5.2, citing Gale–Shapley \[13\].
//!
//! Many-to-many deferred acceptance on the individual pair scores `c(r, p)`:
//! papers (with `δp` slots each) propose to reviewers in decreasing score
//! order; a reviewer holds at most `δr` proposals and evicts the
//! lowest-scoring one when full. Because the objective ignores group
//! composition entirely, SM shows exactly the §5.2 weakness: an
//! interdisciplinary paper can end up with a narrow group.
//!
//! Deferred acceptance can strand slots when the only reviewers with spare
//! capacity already serve the paper; a greedy completion pass fills those.

use crate::assignment::Assignment;
use crate::engine::{PairMatrix, ScoreContext};
use crate::error::{Error, Result};
use crate::problem::Instance;
use crate::score::Scoring;
use std::collections::VecDeque;

/// Run paper-proposing deferred acceptance on the legacy boxed-vector pair
/// scores (the engine reference), then complete any stranded slots.
pub fn solve(inst: &Instance, scoring: Scoring) -> Result<Assignment> {
    solve_impl(inst, &PairMatrix::from_instance(inst, scoring))
}

/// Deferred acceptance over a [`ScoreContext`]'s flat pair-score matrix.
pub fn solve_ctx(ctx: &ScoreContext<'_>) -> Result<Assignment> {
    solve_impl(ctx.instance(), ctx.pair_matrix())
}

fn solve_impl(inst: &Instance, pair: &PairMatrix) -> Result<Assignment> {
    let (num_p, num_r) = (inst.num_papers(), inst.num_reviewers());
    // Preference lists: reviewers by descending pair score (COI excluded).
    let mut prefs: Vec<Vec<usize>> = Vec::with_capacity(num_p);
    for p in 0..num_p {
        let scores = pair.paper_row(p);
        let mut order: Vec<usize> = (0..num_r).filter(|&r| !inst.is_coi(r, p)).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
        prefs.push(order);
    }

    // held[r] = papers currently accepted by reviewer r.
    let mut held: Vec<Vec<usize>> = vec![Vec::new(); num_r];
    // next proposal index per paper, and how many slots it still needs.
    let mut next = vec![0usize; num_p];
    let mut missing = vec![inst.delta_p(); num_p];
    let mut queue: VecDeque<usize> = (0..num_p).collect();

    while let Some(p) = queue.pop_front() {
        while missing[p] > 0 && next[p] < prefs[p].len() {
            let r = prefs[p][next[p]];
            next[p] += 1;
            if held[r].contains(&p) {
                continue;
            }
            if held[r].len() < inst.delta_r() {
                held[r].push(p);
                missing[p] -= 1;
            } else {
                // Evict the worst held paper if p scores higher with r.
                let (worst_idx, worst_p) = held[r]
                    .iter()
                    .copied()
                    .enumerate()
                    .min_by(|a, b| pair.get(r, a.1).total_cmp(&pair.get(r, b.1)))
                    .expect("reviewer at capacity holds at least one paper");
                if pair.get(r, p) > pair.get(r, worst_p) {
                    held[r][worst_idx] = p;
                    missing[p] -= 1;
                    missing[worst_p] += 1;
                    queue.push_back(worst_p);
                }
            }
        }
    }

    let mut assignment = Assignment::empty(num_p);
    for (r, papers) in held.iter().enumerate() {
        for &p in papers {
            assignment.assign(r, p);
        }
    }

    // Completion pass for stranded slots (rare; tight capacity + duplicate
    // prohibition). Prefer the highest-scoring reviewer with spare capacity;
    // when every spare reviewer already serves the paper, free capacity by
    // swapping an assignment elsewhere.
    let mut loads = assignment.loads(num_r);
    for p in 0..num_p {
        while assignment.group(p).len() < inst.delta_p() {
            let candidate = (0..num_r)
                .filter(|&r| {
                    loads[r] < inst.delta_r()
                        && !assignment.group(p).contains(&r)
                        && !inst.is_coi(r, p)
                })
                .max_by(|&a, &b| pair.get(a, p).total_cmp(&pair.get(b, p)));
            match candidate {
                Some(r) => {
                    assignment.assign(r, p);
                    loads[r] += 1;
                }
                None => {
                    super::repair_capacity(inst, &mut assignment, &mut loads, p, 1).map_err(
                        |_| {
                            Error::Infeasible(format!(
                                "stable matching could not complete paper {p}"
                            ))
                        },
                    )?;
                }
            }
        }
    }
    Ok(assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cra::testutil::random_instance;
    use crate::topic::TopicVector;

    fn tv(v: &[f64]) -> TopicVector {
        TopicVector::new(v.to_vec())
    }

    #[test]
    fn produces_valid_assignments() {
        for seed in 0..6 {
            let inst = random_instance(10, 7, 5, 3, seed);
            let a = solve(&inst, Scoring::WeightedCoverage).unwrap();
            a.validate(&inst).unwrap();
        }
    }

    #[test]
    fn no_blocking_pair_within_capacity() {
        // Stability spot check: no (r, p) pair where both would strictly
        // gain — p preferring r to one of its reviewers while r has spare
        // capacity (eviction-based blocking needs care with the completion
        // pass, so we check the spare-capacity case only).
        let inst = random_instance(6, 8, 4, 2, 11);
        let a = solve(&inst, Scoring::WeightedCoverage).unwrap();
        let loads = a.loads(8);
        let s = Scoring::WeightedCoverage;
        for p in 0..6 {
            let worst_held = a
                .group(p)
                .iter()
                .map(|&r| s.pair_score(inst.reviewer(r), inst.paper(p)))
                .fold(f64::INFINITY, f64::min);
            for r in 0..8 {
                if loads[r] < inst.delta_r() && !a.group(p).contains(&r) {
                    let sc = s.pair_score(inst.reviewer(r), inst.paper(p));
                    assert!(
                        sc <= worst_held + 1e-9,
                        "blocking pair: paper {p} prefers idle reviewer {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn interdisciplinary_paper_gets_narrow_group() {
        // The §1/§5.2 criticism reproduced: a paper split across two topics
        // gets two same-topic specialists under SM when they score highest
        // individually.
        let papers = vec![tv(&[0.5, 0.5]), tv(&[1.0, 0.0])];
        let reviewers = vec![
            tv(&[0.55, 0.45]), // generalist A: pair score 1.0 with p0
            tv(&[0.45, 0.55]), // generalist B
            tv(&[1.0, 0.0]),   // specialist t1
            tv(&[0.9, 0.1]),   // specialist t1
        ];
        let inst = Instance::new(papers, reviewers, 2, 2).unwrap();
        let a = solve(&inst, Scoring::WeightedCoverage).unwrap();
        a.validate(&inst).unwrap();
        // p0's top-2 individual scorers are the generalists (score 1.0 and
        // 0.9...): SM gives it both generalists even though a
        // specialist+generalist mix would have equal group coverage but
        // free a generalist for nothing — the point is SM never reasons
        // about groups.
        let mut g = a.group(0).to_vec();
        g.sort_unstable();
        assert_eq!(g, vec![0, 1]);
    }

    #[test]
    fn coi_never_assigned() {
        let mut inst = random_instance(5, 6, 4, 2, 13);
        inst.add_coi(0, 0);
        inst.add_coi(5, 4);
        let a = solve(&inst, Scoring::WeightedCoverage).unwrap();
        assert!(!a.group(0).contains(&0));
        assert!(!a.group(4).contains(&5));
    }
}
